#include "exec/morsel.h"

#include <algorithm>
#include <string>

#include "common/config.h"
#include "common/logging.h"
#include "common/trace.h"

namespace indbml::exec {

std::vector<storage::PartitionRange> MakeMorsels(const storage::Table& table,
                                                 int64_t morsel_rows) {
  if (morsel_rows <= 0) morsel_rows = kDefaultMorselRows;
  const int64_t n = table.num_rows();
  std::vector<storage::PartitionRange> morsels;
  if (n == 0) return morsels;
  morsels.reserve(static_cast<size_t>((n + morsel_rows - 1) / morsel_rows));

  // Group alignment: never split a run of equal ids across morsels (§4.4's
  // repartitioning-free guarantee depends on id groups staying within one
  // worker's row range).
  const storage::Column* id = nullptr;
  if (!table.unique_id_column().empty()) {
    Result<int> idx = table.ColumnIndex(table.unique_id_column());
    if (idx.ok() &&
        table.column(idx.ValueOrDie()).type() == storage::DataType::kInt64) {
      id = &table.column(idx.ValueOrDie());
    }
  }

  int64_t begin = 0;
  while (begin < n) {
    int64_t end = std::min<int64_t>(begin + morsel_rows, n);
    if (id != nullptr) {
      while (end < n && id->GetInt64(end) == id->GetInt64(end - 1)) ++end;
    }
    morsels.push_back({begin, end});
    begin = end;
  }
  return morsels;
}

Status RunMorsel(Operator* root, ExecContext* ctx, const Morsel& morsel,
                 ResultCollector* collector) {
  ctx->morsel_begin = morsel.begin;
  ctx->morsel_end = morsel.end;
  ctx->morsel_index = morsel.index;
  INDBML_RETURN_NOT_OK(root->Rewind(ctx));
  QueryResult batch;
  batch.types = root->output_types();
  INDBML_RETURN_NOT_OK(DrainAppend(root, ctx, &batch));
  collector->Add(morsel.index, std::move(batch.chunks), batch.num_rows);
  return Status::OK();
}

Result<QueryResult> ExecutePipeline(const WorkerPlanFactory& factory,
                                    MorselSource* source, int num_workers,
                                    storage::Catalog* catalog, ThreadPool* pool) {
  if (num_workers <= 0) num_workers = 1;
  ResultCollector collector(source->num_morsels());
  FirstError first_error;

  auto record_error = [&](const Status& s) {
    source->Abort();
    first_error.Record(s);
  };

  auto run_worker = [&](int w) {
    trace::Span span("worker " + std::to_string(w));
    ExecContext ctx;
    ctx.catalog = catalog;
    ctx.worker_id = w;
    Result<OperatorPtr> op = factory(w);
    if (!op.ok()) {
      record_error(op.status());
      return;
    }
    Operator* root = op.ValueOrDie().get();
    // Open unconditionally — even when the source is already dry or aborted
    // — so every worker participates in Open-time barriers (ModelJoin
    // build, paper §5.2).
    Status status = root->Open(&ctx);
    if (status.ok()) {
      collector.SetSchema(root->output_names(), root->output_types());
      Morsel m;
      while (source->Next(&m)) {
        status = RunMorsel(root, &ctx, m, &collector);
        if (!status.ok()) {
          record_error(status);
          break;
        }
      }
    } else {
      record_error(status);
    }
    root->Close(&ctx);
  };

  if (pool != nullptr && num_workers > 1) {
    INDBML_CHECK(num_workers <= pool->num_threads())
        << "pipeline workers exceed pool capacity (Open barriers would "
           "deadlock)";
    pool->ParallelFor(num_workers, run_worker);
  } else {
    for (int w = 0; w < num_workers; ++w) run_worker(w);
  }

  Status first = first_error.Get();
  if (!first.ok()) return first;
  return collector.Assemble();
}

}  // namespace indbml::exec
