#ifndef INDBML_EXEC_OPERATOR_H_
#define INDBML_EXEC_OPERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expression.h"
#include "exec/vector.h"
#include "storage/table.h"

namespace indbml::exec {

struct OperatorStats;

/// Per-execution state passed down the operator tree.
struct ExecContext {
  storage::Catalog* catalog = nullptr;
  /// Worker running this operator-tree instance. Under the morsel-driven
  /// pipeline executor this is the worker slot in [0, num_workers); under
  /// the static-partition baseline it is the partition index (paper §4.4:
  /// each execution thread gets a private query plan).
  int worker_id = 0;
  /// Row range of the morsel the executor is about to run (set before every
  /// Rewind call); morsel_index is the morsel's position in global row
  /// order, -1 outside morsel-driven execution.
  int64_t morsel_begin = 0;
  int64_t morsel_end = 0;
  int64_t morsel_index = -1;
  /// Stats slot of the operator currently being profiled (set by
  /// ProfiledOperator around each Open/Next/Close call, null when the query
  /// runs without EXPLAIN ANALYZE). Operator bodies use it to report named
  /// sub-phase timings, see exec/profile.h.
  OperatorStats* active_stats = nullptr;
  /// Query-level cancellation flag (the serving executor wires it to
  /// QueryHandle::Cancel; null outside the serving path). Operators that
  /// block — the inference batcher's latency-budget wait — poll it so
  /// Cancel returns promptly instead of riding out the wait.
  const std::atomic<bool>* interrupt = nullptr;
};

/// \brief Volcano-style vectorized operator (open/next/close, paper §5.1),
/// producing DataChunks of up to kDefaultVectorSize rows.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Output column types; stable after construction.
  virtual const std::vector<DataType>& output_types() const = 0;
  /// Output column names (diagnostics + result labels).
  virtual const std::vector<std::string>& output_names() const = 0;

  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next chunk into `out` (already Reset to output_types by
  /// the caller); sets `*eof` when exhausted (out may still carry rows on
  /// the eof call only if size > 0).
  virtual Status Next(ExecContext* ctx, DataChunk* out, bool* eof) = 0;

  virtual void Close(ExecContext* /*ctx*/) {}

  /// Re-arms an *open* operator tree for the next morsel (exec/morsel.h):
  /// streaming state is reset so Next() produces the rows of the morsel
  /// range in `ctx`, while expensive once-per-query state (a ModelJoin's
  /// built model, a hash join's build table over a non-morsel side) is
  /// kept. Called by the pipeline executor between Open and Close, before
  /// every morsel including the first. The default refuses, so an operator
  /// that never audited its state cannot silently return stale rows.
  virtual Status Rewind(ExecContext* ctx);

  /// True if this subtree contains a morsel-bound scan, i.e. Rewind changes
  /// which base rows the subtree produces. Joins use it to decide whether a
  /// materialised side must be rebuilt per morsel.
  virtual bool MorselDriven() const { return false; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// \brief Fully materialised query output.
struct QueryResult {
  std::vector<std::string> names;
  std::vector<DataType> types;
  std::vector<DataChunk> chunks;
  int64_t num_rows = 0;

  /// Row/column random access (test convenience; O(#chunks)).
  Value GetValue(int64_t row, int64_t col) const;

  /// Index of the result column with this (case-insensitive) name.
  Result<int> ColumnIndex(const std::string& name) const;

  /// Copies the result into a catalog table.
  storage::TablePtr ToTable(const std::string& table_name) const;

  /// Total bytes across all chunks (intermediate-result accounting).
  int64_t MemoryBytes() const;
};

/// Runs an operator tree to completion and materialises all chunks.
Result<QueryResult> DrainOperator(Operator* root, ExecContext* ctx);

/// Drains an *already open* operator into `result` (appends chunks; does
/// not Open or Close). Used by the pipeline executor per morsel and by
/// operators that lazily materialise a child they keep open across
/// Rewinds (sort, hash-join build, cross-join right side).
Status DrainAppend(Operator* root, ExecContext* ctx, QueryResult* result);

/// Copies row `row` of `src` onto the end of `dst` (all columns).
void AppendRowTo(const DataChunk& src, int64_t row, DataChunk* dst);

}  // namespace indbml::exec

#endif  // INDBML_EXEC_OPERATOR_H_
