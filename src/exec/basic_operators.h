#ifndef INDBML_EXEC_BASIC_OPERATORS_H_
#define INDBML_EXEC_BASIC_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace indbml::exec {

/// \brief Row filter: emits only rows for which `condition` is true.
class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr condition);

  const std::vector<DataType>& output_types() const override {
    return child_->output_types();
  }
  const std::vector<std::string>& output_names() const override {
    return child_->output_names();
  }

  Status Open(ExecContext* ctx) override { return child_->Open(ctx); }
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  OperatorPtr child_;
  ExprPtr condition_;
  DataChunk in_;  ///< reused input buffer (no per-batch reallocation)
};

/// \brief Projection: computes one expression per output column.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names);

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override { return child_->Open(ctx); }
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;
  DataChunk in_;  ///< reused input buffer (no per-batch reallocation)
};

/// \brief LIMIT n.
class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t limit) : child_(std::move(child)), limit_(limit) {}

  const std::vector<DataType>& output_types() const override {
    return child_->output_types();
  }
  const std::vector<std::string>& output_names() const override {
    return child_->output_names();
  }

  Status Open(ExecContext* ctx) override {
    remaining_ = limit_;
    return child_->Open(ctx);
  }
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override {
    remaining_ = limit_;
    return child_->Rewind(ctx);
  }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t remaining_ = 0;
};

/// \brief Replays a materialised QueryResult (derived tables, tests, and
/// the client-transfer baseline's re-ingest path).
class ChunkSourceOperator final : public Operator {
 public:
  explicit ChunkSourceOperator(std::shared_ptr<QueryResult> result)
      : result_(std::move(result)) {}

  const std::vector<DataType>& output_types() const override { return result_->types; }
  const std::vector<std::string>& output_names() const override {
    return result_->names;
  }

  Status Open(ExecContext*) override {
    index_ = 0;
    return Status::OK();
  }
  Status Next(ExecContext*, DataChunk* out, bool* eof) override {
    if (index_ >= result_->chunks.size()) {
      *eof = true;
      return Status::OK();
    }
    *out = result_->chunks[index_++];
    *eof = false;
    return Status::OK();
  }
  Status Rewind(ExecContext*) override {
    index_ = 0;
    return Status::OK();
  }

 private:
  std::shared_ptr<QueryResult> result_;
  size_t index_ = 0;
};

/// \brief ORDER BY: materialises the input and emits it sorted.
class SortOperator final : public Operator {
 public:
  /// `ascending[i]` pairs with `keys[i]`.
  SortOperator(OperatorPtr child, std::vector<ExprPtr> keys, std::vector<bool> ascending);

  const std::vector<DataType>& output_types() const override {
    return child_->output_types();
  }
  const std::vector<std::string>& output_names() const override {
    return child_->output_names();
  }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  /// Drains the (already open) child and computes the output order. Runs
  /// lazily on the first Next after Open/Rewind, so a Rewind between
  /// morsels only re-sorts the new morsel's rows.
  Status Materialize(ExecContext* ctx);

  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<bool> ascending_;
  QueryResult materialized_;
  std::vector<std::pair<int64_t, int64_t>> order_;  ///< (chunk, row) in output order
  size_t cursor_ = 0;
  bool sorted_ = false;
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_BASIC_OPERATORS_H_
