#include "exec/expression.h"

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/simd.h"
#include "common/string_util.h"
#include "nn/blas.h"

namespace indbml::exec {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* ScalarFnName(ScalarFn fn) {
  switch (fn) {
    case ScalarFn::kSigmoid:
      return "sigmoid";
    case ScalarFn::kTanh:
      return "tanh";
    case ScalarFn::kRelu:
      return "relu";
    case ScalarFn::kExp:
      return "exp";
    case ScalarFn::kAbs:
      return "abs";
    case ScalarFn::kSin:
      return "sin";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return name.empty() ? StrFormat("#%lld", static_cast<long long>(column_id))
                          : name;
    case ExprKind::kConstant:
      return constant.ToString();
    case ExprKind::kBinary: {
      // Appends instead of an operator+ chain: GCC 12's -Wrestrict reports a
      // bogus overlapping-memcpy warning on the chained form at -O2.
      std::string out = "(";
      out += children[0]->ToString();
      out += " ";
      out += BinaryOpName(bin_op);
      out += " ";
      out += children[1]->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kUnary:
      return std::string(un_op == UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case ExprKind::kFunction: {
      std::string out = ScalarFnName(fn);
      out += "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < children.size(); i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (i < children.size()) out += " ELSE " + children[i]->ToString();
      return out + " END";
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " + DataTypeName(type) + ")";
  }
  return "?";
}

ExprPtr MakeColumnRef(int64_t column_id, DataType type, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->type = type;
  e->column_id = column_id;
  e->name = std::move(name);
  return e;
}

ExprPtr MakeConstant(const Value& v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConstant;
  e->type = v.type;
  e->constant = v;
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->type = BinaryResultType(op, lhs->type, rhs->type);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->type = op == UnaryOp::kNot ? DataType::kBool : child->type;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeFunction(ScalarFn fn, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->fn = fn;
  e->type = DataType::kFloat;
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCase(std::vector<ExprPtr> parts) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  // Result type: type of the first THEN branch (binder inserts casts).
  e->type = parts.size() >= 2 ? parts[1]->type
                              : (parts.empty() ? DataType::kInt64 : parts[0]->type);
  e->children = std::move(parts);
  return e;
}

ExprPtr MakeCast(ExprPtr child, DataType target) {
  if (child->type == target) return child;
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->type = target;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->type = e.type;
  out->column_id = e.column_id;
  out->name = e.name;
  out->constant = e.constant;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->fn = e.fn;
  out->children.reserve(e.children.size());
  for (const auto& c : e.children) out->children.push_back(CloneExpr(*c));
  return out;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

DataType BinaryResultType(BinaryOp op, DataType lhs, DataType rhs) {
  if (IsComparison(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    return DataType::kBool;
  }
  if (lhs == DataType::kFloat || rhs == DataType::kFloat) return DataType::kFloat;
  return DataType::kInt64;
}

namespace {

using simd::F32x8;
using simd::I64x8;
using simd::Mask8;

/// Promotes a vector to float in place of `tmp` if needed; returns a pointer
/// to float data covering all rows. Writes go through a raw typed pointer
/// (the gather-kernel idiom), not per-row indexed vector accesses.
const float* AsFloats(const Vector& v, std::vector<float>* tmp) {
  if (v.type() == DataType::kFloat) return v.floats();
  tmp->resize(static_cast<size_t>(v.size()));
  float* o = tmp->data();
  const int64_t n = v.size();
  if (v.type() == DataType::kInt64) {
    const int64_t* in = v.ints();
    for (int64_t i = 0; i < n; ++i) o[i] = static_cast<float>(in[i]);
  } else {
    const uint8_t* in = v.bools();
    for (int64_t i = 0; i < n; ++i) o[i] = in[i];
  }
  return o;
}

/// Columnwise comparison writing 0/1 bytes: o[i] = a[i] op b[i]. One kernel
/// per (op, type) pair; the vector loop emits 8-lane bitmasks that are
/// expanded to bytes, the scalar tail finishes the odd lanes with the same
/// per-element semantics (including NaN: only Ne is true on unordered).
template <typename T, typename V>
void CompareColumns(BinaryOp op, const T* a, const T* b, int64_t n, uint8_t* o) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    const int64_t vend = n - (n % simd::kWidth);
    switch (op) {
      case BinaryOp::kEq:
        for (; i < vend; i += simd::kWidth)
          V::Eq(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      case BinaryOp::kNe:
        for (; i < vend; i += simd::kWidth)
          V::Ne(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      case BinaryOp::kLt:
        for (; i < vend; i += simd::kWidth)
          V::Lt(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      case BinaryOp::kLe:
        for (; i < vend; i += simd::kWidth)
          V::Le(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      case BinaryOp::kGt:
        for (; i < vend; i += simd::kWidth)
          V::Gt(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      case BinaryOp::kGe:
        for (; i < vend; i += simd::kWidth)
          V::Ge(V::Load(a + i), V::Load(b + i)).StoreBytes(o + i);
        break;
      default:
        break;
    }
  }
  switch (op) {
    case BinaryOp::kEq:
      for (; i < n; ++i) o[i] = a[i] == b[i];
      break;
    case BinaryOp::kNe:
      for (; i < n; ++i) o[i] = a[i] != b[i];
      break;
    case BinaryOp::kLt:
      for (; i < n; ++i) o[i] = a[i] < b[i];
      break;
    case BinaryOp::kLe:
      for (; i < n; ++i) o[i] = a[i] <= b[i];
      break;
    case BinaryOp::kGt:
      for (; i < n; ++i) o[i] = a[i] > b[i];
      break;
    case BinaryOp::kGe:
      for (; i < n; ++i) o[i] = a[i] >= b[i];
      break;
    default:
      break;
  }
}

/// mask[i] &= (a[i] op c), same lane semantics as CompareColumns. This is
/// the fused scan's predicate kernel: it AND-accumulates straight into the
/// survivor mask instead of materializing a bool vector per predicate.
template <typename T, typename V>
void AndMaskCompareConstImpl(BinaryOp op, const T* a, T c, int64_t n,
                             uint8_t* mask) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    const int64_t vend = n - (n % simd::kWidth);
    const V cv = V::Broadcast(c);
    switch (op) {
      case BinaryOp::kEq:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Eq(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      case BinaryOp::kNe:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Ne(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      case BinaryOp::kLt:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Lt(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      case BinaryOp::kLe:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Le(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      case BinaryOp::kGt:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Gt(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      case BinaryOp::kGe:
        for (; i < vend; i += simd::kWidth)
          (Mask8::FromBytes(mask + i) & V::Ge(V::Load(a + i), cv))
              .StoreBytes(mask + i);
        break;
      default:
        break;
    }
  }
  switch (op) {
    case BinaryOp::kEq:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] == c ? 1 : 0);
      break;
    case BinaryOp::kNe:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] != c ? 1 : 0);
      break;
    case BinaryOp::kLt:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] < c ? 1 : 0);
      break;
    case BinaryOp::kLe:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] <= c ? 1 : 0);
      break;
    case BinaryOp::kGt:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] > c ? 1 : 0);
      break;
    case BinaryOp::kGe:
      for (; i < n; ++i) mask[i] = mask[i] & (a[i] >= c ? 1 : 0);
      break;
    default:
      break;
  }
}

Status EvalBinary(const Expr& expr, const DataChunk& input, Vector* out) {
  Vector lhs(expr.children[0]->type);
  Vector rhs(expr.children[1]->type);
  INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[0], input, &lhs));
  INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[1], input, &rhs));
  // Column refs over a filtered chunk arrive as selected views; the typed
  // kernels below want contiguous data, so this is the flatten boundary.
  lhs.Flatten();
  rhs.Flatten();
  int64_t n = input.size;
  out->Resize(n);

  BinaryOp op = expr.bin_op;
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    // as_const: the const accessors read shared views in place; the
    // non-const overloads would copy-on-write a private buffer first.
    const uint8_t* a = std::as_const(lhs).bools();
    const uint8_t* b = std::as_const(rhs).bools();
    uint8_t* o = out->bools();
    if (op == BinaryOp::kAnd) {
      for (int64_t i = 0; i < n; ++i) o[i] = a[i] & b[i];
    } else {
      for (int64_t i = 0; i < n; ++i) o[i] = a[i] | b[i];
    }
    return Status::OK();
  }

  bool int_math = lhs.type() == DataType::kInt64 && rhs.type() == DataType::kInt64;
  if (IsComparison(op)) {
    uint8_t* o = out->bools();
    if (int_math) {
      CompareColumns<int64_t, I64x8>(op, std::as_const(lhs).ints(),
                                     std::as_const(rhs).ints(), n, o);
    } else {
      std::vector<float> ta, tb;
      const float* a = AsFloats(lhs, &ta);
      const float* b = AsFloats(rhs, &tb);
      CompareColumns<float, F32x8>(op, a, b, n, o);
    }
    return Status::OK();
  }

  // Arithmetic. Int64 add/sub and all float ops vectorize; int64 mul has no
  // 64-bit lane multiply in AVX2 and div/mod need the per-row zero check, so
  // those three stay scalar.
  if (expr.type == DataType::kInt64) {
    const int64_t* a = std::as_const(lhs).ints();
    const int64_t* b = std::as_const(rhs).ints();
    int64_t* o = out->ints();
    int64_t i = 0;
    switch (op) {
      case BinaryOp::kAdd:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (I64x8::Load(a + i) + I64x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (I64x8::Load(a + i) - I64x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        for (; i < n; ++i) o[i] = a[i] * b[i];
        break;
      case BinaryOp::kDiv:
        for (; i < n; ++i) {
          if (b[i] == 0) return Status::ExecutionError("division by zero");
          o[i] = a[i] / b[i];
        }
        break;
      case BinaryOp::kMod:
        for (; i < n; ++i) {
          if (b[i] == 0) return Status::ExecutionError("modulo by zero");
          o[i] = a[i] % b[i];
        }
        break;
      default:
        return Status::Internal("bad arithmetic op");
    }
  } else {
    std::vector<float> ta, tb;
    const float* a = AsFloats(lhs, &ta);
    const float* b = AsFloats(rhs, &tb);
    float* o = out->floats();
    int64_t i = 0;
    switch (op) {
      case BinaryOp::kAdd:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (F32x8::Load(a + i) + F32x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (F32x8::Load(a + i) - F32x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (F32x8::Load(a + i) * F32x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] * b[i];
        break;
      case BinaryOp::kDiv:
        if (simd::UseSimd()) {
          for (; i + simd::kWidth <= n; i += simd::kWidth) {
            (F32x8::Load(a + i) / F32x8::Load(b + i)).Store(o + i);
          }
        }
        for (; i < n; ++i) o[i] = a[i] / b[i];
        break;
      default:
        return Status::Internal("bad float arithmetic op");
    }
  }
  return Status::OK();
}

/// CASE branch merge: writes `src` rows into `out` wherever `cond` (nullptr
/// = ELSE, always true) holds and the row is still undecided. Typed when the
/// branch type matches the result type (the binder inserts casts, so it
/// always does in practice); coercing Value fallback otherwise. `src` may be
/// a selected view — the Get*At readers apply its selection.
void MergeCaseBranch(const Vector& src, const uint8_t* cond,
                     std::vector<uint8_t>* decided, int64_t n, Vector* out) {
  auto pending = [&](int64_t r) {
    return !(*decided)[static_cast<size_t>(r)] && (cond == nullptr || cond[r]);
  };
  // Vector path: flat same-typed branch (the common shape — branches are
  // constants or expression results). Builds the take-mask from the cond and
  // decided byte vectors, blends 8 rows at a time, and ORs the mask back
  // into `decided`. Selected views and type mismatches fall through to the
  // per-row readers below, which apply the same row-local rule.
  if (src.type() == out->type() && src.selection() == nullptr &&
      src.size() >= n && simd::UseSimd() && out->type() != DataType::kBool) {
    uint8_t* dec = decided->data();
    int64_t i = 0;
    const int64_t vend = n - (n % simd::kWidth);
    if (out->type() == DataType::kFloat) {
      const float* s = std::as_const(src).floats();
      float* o = out->floats();
      for (; i < vend; i += simd::kWidth) {
        Mask8 take = ~Mask8::FromBytes(dec + i);
        if (cond != nullptr) take = take & Mask8::FromBytes(cond + i);
        if (!take.AnyTrue()) continue;
        F32x8::Select(take, F32x8::Load(s + i), F32x8::Load(o + i)).Store(o + i);
        take.OrIntoBytes(dec + i);
      }
      for (; i < n; ++i) {
        if (!dec[i] && (cond == nullptr || cond[i])) {
          o[i] = s[i];
          dec[i] = 1;
        }
      }
    } else {
      const int64_t* s = std::as_const(src).ints();
      int64_t* o = out->ints();
      for (; i < vend; i += simd::kWidth) {
        Mask8 take = ~Mask8::FromBytes(dec + i);
        if (cond != nullptr) take = take & Mask8::FromBytes(cond + i);
        if (!take.AnyTrue()) continue;
        I64x8::Select(take, I64x8::Load(s + i), I64x8::Load(o + i)).Store(o + i);
        take.OrIntoBytes(dec + i);
      }
      for (; i < n; ++i) {
        if (!dec[i] && (cond == nullptr || cond[i])) {
          o[i] = s[i];
          dec[i] = 1;
        }
      }
    }
    return;
  }
  if (src.type() != out->type()) {
    for (int64_t r = 0; r < n; ++r) {
      if (!pending(r)) continue;
      out->SetValue(r, src.GetValue(r));
      (*decided)[static_cast<size_t>(r)] = 1;
    }
    return;
  }
  switch (out->type()) {
    case DataType::kBool: {
      uint8_t* o = out->bools();
      for (int64_t r = 0; r < n; ++r) {
        if (!pending(r)) continue;
        o[r] = src.GetBoolAt(r) ? 1 : 0;
        (*decided)[static_cast<size_t>(r)] = 1;
      }
      return;
    }
    case DataType::kInt64: {
      int64_t* o = out->ints();
      for (int64_t r = 0; r < n; ++r) {
        if (!pending(r)) continue;
        o[r] = src.GetInt64At(r);
        (*decided)[static_cast<size_t>(r)] = 1;
      }
      return;
    }
    case DataType::kFloat: {
      float* o = out->floats();
      for (int64_t r = 0; r < n; ++r) {
        if (!pending(r)) continue;
        o[r] = src.GetFloatAt(r);
        (*decided)[static_cast<size_t>(r)] = 1;
      }
      return;
    }
  }
}

}  // namespace

Status EvaluateExpr(const Expr& expr, const DataChunk& input, Vector* out) {
  const int64_t n = input.size;
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      if (expr.column_id < 0 || expr.column_id >= input.num_columns()) {
        return Status::Internal(
            StrFormat("column index %lld out of range (%lld columns)",
                      static_cast<long long>(expr.column_id),
                      static_cast<long long>(input.num_columns())));
      }
      *out = input.column(expr.column_id);
      return Status::OK();
    }
    case ExprKind::kConstant: {
      out->Resize(n);
      if (n == 0) return Status::OK();
      // Coerce once, then a typed fill (no per-row Value dispatch).
      const Value& v = expr.constant;
      switch (out->type()) {
        case DataType::kBool: {
          const uint8_t b =
              (v.type == DataType::kBool ? v.b : v.AsDouble() != 0) ? 1 : 0;
          uint8_t* o = out->bools();
          std::fill(o, o + n, b);
          break;
        }
        case DataType::kInt64: {
          const int64_t iv = v.type == DataType::kInt64
                                 ? v.i
                                 : static_cast<int64_t>(v.AsDouble());
          int64_t* o = out->ints();
          std::fill(o, o + n, iv);
          break;
        }
        case DataType::kFloat: {
          const float fv = v.type == DataType::kFloat
                               ? v.f
                               : static_cast<float>(v.AsDouble());
          float* o = out->floats();
          std::fill(o, o + n, fv);
          break;
        }
      }
      return Status::OK();
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, input, out);
    case ExprKind::kUnary: {
      Vector child(expr.children[0]->type);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[0], input, &child));
      child.Flatten();
      out->Resize(n);
      if (expr.un_op == UnaryOp::kNot) {
        const uint8_t* a = std::as_const(child).bools();
        uint8_t* o = out->bools();
        for (int64_t i = 0; i < n; ++i) o[i] = a[i] ? 0 : 1;
      } else if (child.type() == DataType::kInt64) {
        const int64_t* a = std::as_const(child).ints();
        int64_t* o = out->ints();
        for (int64_t i = 0; i < n; ++i) o[i] = -a[i];
      } else {
        const float* a = std::as_const(child).floats();
        float* o = out->floats();
        for (int64_t i = 0; i < n; ++i) o[i] = -a[i];
      }
      return Status::OK();
    }
    case ExprKind::kFunction: {
      Vector child(expr.children[0]->type);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[0], input, &child));
      child.Flatten();
      std::vector<float> tmp;
      const float* a = AsFloats(child, &tmp);
      out->Resize(n);
      float* o = out->floats();
      switch (expr.fn) {
        case ScalarFn::kSigmoid:
          for (int64_t i = 0; i < n; ++i) o[i] = blas::ScalarSigmoid(a[i]);
          break;
        case ScalarFn::kTanh:
          for (int64_t i = 0; i < n; ++i) o[i] = blas::ScalarTanh(a[i]);
          break;
        case ScalarFn::kRelu:
          for (int64_t i = 0; i < n; ++i) o[i] = blas::ScalarRelu(a[i]);
          break;
        case ScalarFn::kExp:
          for (int64_t i = 0; i < n; ++i) o[i] = std::exp(a[i]);
          break;
        case ScalarFn::kAbs:
          for (int64_t i = 0; i < n; ++i) o[i] = std::fabs(a[i]);
          break;
        case ScalarFn::kSin:
          for (int64_t i = 0; i < n; ++i) o[i] = std::sin(a[i]);
          break;
      }
      return Status::OK();
    }
    case ExprKind::kCase: {
      out->Resize(n);
      std::vector<uint8_t> decided(static_cast<size_t>(n), 0);
      size_t i = 0;
      for (; i + 1 < expr.children.size(); i += 2) {
        Vector cond(DataType::kBool);
        INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[i], input, &cond));
        Vector then(expr.children[i + 1]->type);
        INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[i + 1], input, &then));
        cond.Flatten();
        MergeCaseBranch(then, std::as_const(cond).bools(), &decided, n, out);
      }
      if (i < expr.children.size()) {
        Vector els(expr.children[i]->type);
        INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[i], input, &els));
        MergeCaseBranch(els, nullptr, &decided, n, out);
      } else {
        for (int64_t r = 0; r < n; ++r) {
          if (!decided[static_cast<size_t>(r)]) {
            out->SetValue(r, Value::Float(0.0f));
          }
        }
      }
      return Status::OK();
    }
    case ExprKind::kCast: {
      Vector child(expr.children[0]->type);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*expr.children[0], input, &child));
      child.Flatten();
      out->Resize(n);
      // Typed source→target kernels; same truncate-toward-zero semantics as
      // the old per-row Value path.
      switch (expr.type) {
        case DataType::kBool: {
          uint8_t* o = out->bools();
          if (child.type() == DataType::kInt64) {
            const int64_t* a = std::as_const(child).ints();
            for (int64_t r = 0; r < n; ++r) o[r] = a[r] != 0 ? 1 : 0;
          } else if (child.type() == DataType::kFloat) {
            const float* a = std::as_const(child).floats();
            for (int64_t r = 0; r < n; ++r) o[r] = a[r] != 0 ? 1 : 0;
          } else {
            std::memcpy(o, std::as_const(child).bools(),
                        static_cast<size_t>(n));
          }
          break;
        }
        case DataType::kInt64: {
          int64_t* o = out->ints();
          if (child.type() == DataType::kFloat) {
            const float* a = std::as_const(child).floats();
            for (int64_t r = 0; r < n; ++r) {
              o[r] = static_cast<int64_t>(static_cast<double>(a[r]));
            }
          } else if (child.type() == DataType::kBool) {
            const uint8_t* a = std::as_const(child).bools();
            for (int64_t r = 0; r < n; ++r) o[r] = a[r] != 0 ? 1 : 0;
          } else {
            std::memcpy(o, std::as_const(child).ints(),
                        static_cast<size_t>(n) * sizeof(int64_t));
          }
          break;
        }
        case DataType::kFloat: {
          float* o = out->floats();
          if (child.type() == DataType::kInt64) {
            const int64_t* a = std::as_const(child).ints();
            for (int64_t r = 0; r < n; ++r) o[r] = static_cast<float>(a[r]);
          } else if (child.type() == DataType::kBool) {
            const uint8_t* a = std::as_const(child).bools();
            for (int64_t r = 0; r < n; ++r) o[r] = a[r] != 0 ? 1.0f : 0.0f;
          } else {
            std::memcpy(o, std::as_const(child).floats(),
                        static_cast<size_t>(n) * sizeof(float));
          }
          break;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

void AndMaskCompareConstFloat(BinaryOp op, const float* a, float c, int64_t n,
                              uint8_t* mask) {
  AndMaskCompareConstImpl<float, F32x8>(op, a, c, n, mask);
}

void AndMaskCompareConstInt64(BinaryOp op, const int64_t* a, int64_t c,
                              int64_t n, uint8_t* mask) {
  AndMaskCompareConstImpl<int64_t, I64x8>(op, a, c, n, mask);
}

void AppendMaskIndices(const uint8_t* mask, int64_t n, int32_t base,
                       std::vector<int32_t>* out) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      unsigned bits = Mask8::FromBytes(mask + i).bits;
      while (bits != 0) {
        const int j = __builtin_ctz(bits);
        out->push_back(base + static_cast<int32_t>(i) + j);
        bits &= bits - 1;
      }
    }
  }
  for (; i < n; ++i) {
    if (mask[i] != 0) out->push_back(base + static_cast<int32_t>(i));
  }
}

void CollectColumnIds(const Expr& expr, std::vector<int64_t>* ids) {
  if (expr.kind == ExprKind::kColumnRef) ids->push_back(expr.column_id);
  for (const auto& c : expr.children) CollectColumnIds(*c, ids);
}

bool RemapColumnIds(Expr* expr, const std::unordered_map<int64_t, int64_t>& mapping) {
  if (expr->kind == ExprKind::kColumnRef) {
    auto it = mapping.find(expr->column_id);
    if (it == mapping.end()) return false;
    expr->column_id = it->second;
  }
  for (auto& c : expr->children) {
    if (!RemapColumnIds(c.get(), mapping)) return false;
  }
  return true;
}

}  // namespace indbml::exec
