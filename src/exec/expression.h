#ifndef INDBML_EXEC_EXPRESSION_H_
#define INDBML_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/vector.h"

namespace indbml::exec {

enum class ExprKind { kColumnRef, kConstant, kBinary, kUnary, kFunction, kCase, kCast };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr
};

enum class UnaryOp { kNot, kNegate };

/// Scalar functions available in SQL; sigmoid/tanh/relu are the activation
/// functions ML-To-SQL emits (§4.3.5) and are evaluated with the *same*
/// kernels as every other inference approach for bit-identical results.
enum class ScalarFn { kSigmoid, kTanh, kRelu, kExp, kAbs, kSin };

const char* BinaryOpName(BinaryOp op);
const char* ScalarFnName(ScalarFn fn);

/// \brief Bound, typed scalar expression tree.
///
/// The same tree is used in two phases: after binding, `column_id` holds a
/// binder-assigned binding id; the physical planner rewrites it in place to
/// the child-chunk column index before execution.
struct Expr {
  ExprKind kind;
  DataType type = DataType::kInt64;

  // kColumnRef
  int64_t column_id = -1;
  std::string name;  ///< diagnostic column name

  // kConstant
  Value constant;

  // kBinary / kUnary / kFunction
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNot;
  ScalarFn fn = ScalarFn::kSigmoid;

  /// kBinary: [lhs, rhs]; kUnary/kCast: [child]; kFunction: args;
  /// kCase: [when1, then1, ..., whenN, thenN, else].
  std::vector<std::unique_ptr<Expr>> children;

  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeColumnRef(int64_t column_id, DataType type, std::string name = "");
ExprPtr MakeConstant(const Value& v);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
ExprPtr MakeFunction(ScalarFn fn, std::vector<ExprPtr> args);
ExprPtr MakeCase(std::vector<ExprPtr> parts);
ExprPtr MakeCast(ExprPtr child, DataType target);

/// Deep copy (operator trees are cloned per partition for parallel plans).
ExprPtr CloneExpr(const Expr& e);

/// Result type of a binary op over the given operand types.
DataType BinaryResultType(BinaryOp op, DataType lhs, DataType rhs);
bool IsComparison(BinaryOp op);

/// Evaluates `expr` over all rows of `input` into `out` (resized to match).
/// Column references must have been resolved to chunk indexes.
Status EvaluateExpr(const Expr& expr, const DataChunk& input, Vector* out);

/// \name Selection-mask kernels
/// The vectorized comparison kernels represent row survival as a byte mask
/// (one 0/1 byte per row, produced 8 lanes at a time — see common/simd.h)
/// instead of branching per row. These entry points let operators compose
/// masks and turn them into selection vectors.
/// @{

/// mask[i] &= (a[i] op c) for i in [0, n). `op` must be a comparison; NaN
/// semantics match the scalar expression evaluator (only kNe is true).
void AndMaskCompareConstFloat(BinaryOp op, const float* a, float c, int64_t n,
                              uint8_t* mask);
void AndMaskCompareConstInt64(BinaryOp op, const int64_t* a, int64_t c,
                              int64_t n, uint8_t* mask);

/// Appends `base + i` to `out` for every nonzero `mask[i]`, in row order.
/// This is the mask → selection-vector boundary used by Filter and the
/// fused scan; callers reserve capacity.
void AppendMaskIndices(const uint8_t* mask, int64_t n, int32_t base,
                       std::vector<int32_t>* out);
/// @}

/// Collects the binding/column ids referenced anywhere in the tree.
void CollectColumnIds(const Expr& expr, std::vector<int64_t>* ids);

/// Rewrites every column reference through `mapping` (old id -> new id).
/// Returns false if a referenced id is missing from the mapping.
bool RemapColumnIds(Expr* expr, const std::unordered_map<int64_t, int64_t>& mapping);

}  // namespace indbml::exec

#endif  // INDBML_EXEC_EXPRESSION_H_
