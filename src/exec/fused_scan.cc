#include "exec/fused_scan.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace indbml::exec {

namespace {

metrics::Counter* FusedScansCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("exec.fused_scans");
  return counter;
}

/// Same comparison rule as the unfused scan's RowPasses (exec/scan.cc):
/// pushed predicates compare in the double domain.
bool CompareDoubles(double lhs, BinaryOp op, double rhs) {
  switch (op) {
    case BinaryOp::kEq:
      return lhs == rhs;
    case BinaryOp::kNe:
      return lhs != rhs;
    case BinaryOp::kLt:
      return lhs < rhs;
    case BinaryOp::kLe:
      return lhs <= rhs;
    case BinaryOp::kGt:
      return lhs > rhs;
    case BinaryOp::kGe:
      return lhs >= rhs;
    default:
      return true;
  }
}

/// Exact rewrite of `x op v` (x float, v double) as a float-domain
/// comparison, so float predicate columns can run through the 8-lane
/// compare kernel without changing a single row's outcome.
///
/// If v is exactly representable as float the op is unchanged. Otherwise v
/// falls strictly between two adjacent floats and the op is adjusted to
/// whichever neighbor (float)v rounded to: e.g. with fv < v, `x < v` holds
/// exactly for the floats x <= fv, so kLt becomes kLe against fv.
struct FloatPredicate {
  enum Kind { kCompare, kAlwaysTrue, kAlwaysFalse };
  Kind kind;
  BinaryOp op;
  float bound;
};

FloatPredicate NormalizeFloatPredicate(BinaryOp op, double v) {
  const float fv = static_cast<float>(v);
  // NaN: every float compares with NaN the same way in both domains.
  if (std::isnan(v) || static_cast<double>(fv) == v) {
    return {FloatPredicate::kCompare, op, fv};
  }
  const bool fv_below = static_cast<double>(fv) < v;
  switch (op) {
    case BinaryOp::kEq:
      return {FloatPredicate::kAlwaysFalse, op, fv};
    case BinaryOp::kNe:
      return {FloatPredicate::kAlwaysTrue, op, fv};
    case BinaryOp::kLt:
      return {FloatPredicate::kCompare, fv_below ? BinaryOp::kLe : BinaryOp::kLt,
              fv};
    case BinaryOp::kLe:
      return {FloatPredicate::kCompare, fv_below ? BinaryOp::kLe : BinaryOp::kLt,
              fv};
    case BinaryOp::kGt:
      return {FloatPredicate::kCompare, fv_below ? BinaryOp::kGt : BinaryOp::kGe,
              fv};
    case BinaryOp::kGe:
      return {FloatPredicate::kCompare, fv_below ? BinaryOp::kGt : BinaryOp::kGe,
              fv};
    default:
      return {FloatPredicate::kAlwaysTrue, op, fv};
  }
}

/// True when `x op v` (x int64, v double) is equivalent to the pure int64
/// comparison `x op (int64)v`: v must be integral and small enough that no
/// int64-to-double rounding can cross it (|v| <= 2^52 keeps every rounded
/// int64 on the same side of v as the exact value).
bool IntPredicateIsExact(double v) {
  constexpr double kLimit = 4503599627370496.0;  // 2^52
  return std::floor(v) == v && std::fabs(v) <= kLimit;
}

}  // namespace

FusedTableScanOperator::FusedTableScanOperator(
    storage::TablePtr table, storage::PartitionRange range,
    std::vector<int> columns, std::vector<ScanPredicate> predicates,
    std::vector<ExprPtr> residual_conditions, std::vector<int> projection,
    std::vector<std::string> names)
    : table_(std::move(table)),
      range_(range),
      columns_(std::move(columns)),
      predicates_(std::move(predicates)),
      residual_conditions_(std::move(residual_conditions)),
      projection_(std::move(projection)),
      names_(std::move(names)) {
  for (int c : columns_) {
    scan_types_.push_back(table_->fields()[static_cast<size_t>(c)].type);
  }
  for (int p : projection_) {
    types_.push_back(scan_types_[static_cast<size_t>(p)]);
  }
}

FusedTableScanOperator::FusedTableScanOperator(
    MorselBound, storage::TablePtr table, std::vector<int> columns,
    std::vector<ScanPredicate> predicates,
    std::vector<ExprPtr> residual_conditions, std::vector<int> projection,
    std::vector<std::string> names)
    : FusedTableScanOperator(std::move(table), storage::PartitionRange{0, 0},
                             std::move(columns), std::move(predicates),
                             std::move(residual_conditions),
                             std::move(projection), std::move(names)) {
  morsel_bound_ = true;
}

Status FusedTableScanOperator::Open(ExecContext*) {
  if (!table_->finalized()) {
    return Status::Internal("scanning a non-finalized table: " + table_->name());
  }
  if (morsel_bound_) range_ = {0, 0};
  cursor_ = range_.begin;
  stats_ = {};
  FusedScansCounter()->Increment();
  return Status::OK();
}

Status FusedTableScanOperator::Rewind(ExecContext* ctx) {
  if (morsel_bound_) {
    range_ = {ctx->morsel_begin, ctx->morsel_end};
  }
  cursor_ = range_.begin;
  return Status::OK();
}

bool FusedTableScanOperator::CanPruneBlock(int64_t block_index) const {
  for (const ScanPredicate& p : predicates_) {
    const auto& stats = table_->block_stats(p.column);
    const storage::BlockStats& bs = stats[static_cast<size_t>(block_index)];
    double lo = bs.min.AsDouble();
    double hi = bs.max.AsDouble();
    double v = p.value.AsDouble();
    bool may_match = true;
    switch (p.op) {
      case BinaryOp::kEq:
        may_match = lo <= v && v <= hi;
        break;
      case BinaryOp::kLt:
        may_match = lo < v;
        break;
      case BinaryOp::kLe:
        may_match = lo <= v;
        break;
      case BinaryOp::kGt:
        may_match = hi > v;
        break;
      case BinaryOp::kGe:
        may_match = hi >= v;
        break;
      case BinaryOp::kNe:
        may_match = !(lo == v && hi == v);
        break;
      default:
        may_match = true;
        break;
    }
    if (!may_match) return true;
  }
  return false;
}

void FusedTableScanOperator::ApplyPredicate(const ScanPredicate& p,
                                            int64_t begin, int64_t rows) {
  const storage::Column& col = table_->column(p.column);
  const double v = p.value.AsDouble();
  uint8_t* mask = mask_.data();
  switch (col.type()) {
    case DataType::kFloat: {
      const FloatPredicate np = NormalizeFloatPredicate(p.op, v);
      if (np.kind == FloatPredicate::kAlwaysFalse) {
        std::fill(mask, mask + rows, uint8_t{0});
      } else if (np.kind == FloatPredicate::kCompare) {
        AndMaskCompareConstFloat(np.op, col.float_data() + begin, np.bound,
                                 rows, mask);
      }
      return;
    }
    case DataType::kInt64: {
      const int64_t* d = col.int_data() + begin;
      if (IntPredicateIsExact(v)) {
        AndMaskCompareConstInt64(p.op, d, static_cast<int64_t>(v), rows, mask);
      } else {
        for (int64_t i = 0; i < rows; ++i) {
          mask[i] = mask[i] &
                    (CompareDoubles(static_cast<double>(d[i]), p.op, v) ? 1 : 0);
        }
      }
      return;
    }
    case DataType::kBool: {
      const uint8_t* d = col.bool_data() + begin;
      for (int64_t i = 0; i < rows; ++i) {
        mask[i] = mask[i] & (CompareDoubles(d[i] != 0 ? 1 : 0, p.op, v) ? 1 : 0);
      }
      return;
    }
  }
}

Status FusedTableScanOperator::ApplyResiduals(int64_t begin, int64_t rows) {
  window_.Reset(scan_types_);
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    const storage::Column& col = table_->column(columns_[ci]);
    window_.column(static_cast<int64_t>(ci)) =
        Vector::View(col.type(), col.buffer(), begin, rows);
  }
  window_.size = rows;
  uint8_t* mask = mask_.data();
  for (const ExprPtr& cond : residual_conditions_) {
    INDBML_RETURN_NOT_OK(EvaluateExpr(*cond, window_, &cond_));
    cond_.Flatten();
    const uint8_t* c = std::as_const(cond_).bools();
    for (int64_t i = 0; i < rows; ++i) {
      mask[i] = mask[i] & (c[i] != 0 ? 1 : 0);
    }
  }
  return Status::OK();
}

Status FusedTableScanOperator::Next(ExecContext*, DataChunk* out, bool* eof) {
  const int64_t rows_per_block = table_->rows_per_block();
  const bool filtering = !predicates_.empty() || !residual_conditions_.empty();
  while (cursor_ < range_.end) {
    // Zone-map block pruning, identical to the unfused scan: only pushed
    // predicates prune (residual conditions are arbitrary expressions).
    if (!predicates_.empty()) {
      int64_t block = cursor_ / rows_per_block;
      int64_t block_end = std::min((block + 1) * rows_per_block, range_.end);
      if (cursor_ % rows_per_block == 0 && block_end <= range_.end) {
        ++stats_.blocks_total;
        if (CanPruneBlock(block)) {
          ++stats_.blocks_pruned;
          cursor_ = block_end;
          continue;
        }
      }
    }

    int64_t window_end = std::min(cursor_ + kDefaultVectorSize, range_.end);
    if (!predicates_.empty()) {
      window_end = std::min(window_end,
                            ((cursor_ / rows_per_block) + 1) * rows_per_block);
    }
    const int64_t window_rows = window_end - cursor_;

    SelectionPtr sel;
    if (filtering) {
      mask_.assign(static_cast<size_t>(window_rows), 1);
      for (const ScanPredicate& p : predicates_) {
        ApplyPredicate(p, cursor_, window_rows);
      }
      INDBML_RETURN_NOT_OK(ApplyResiduals(cursor_, window_rows));
      passing_.clear();
      passing_.reserve(static_cast<size_t>(window_rows));
      AppendMaskIndices(mask_.data(), window_rows, 0, &passing_);
      if (passing_.empty()) {
        cursor_ = window_end;
        continue;
      }
      sel = std::make_shared<const SelectionVector>(passing_);
    }

    for (size_t oi = 0; oi < projection_.size(); ++oi) {
      const storage::Column& col =
          table_->column(columns_[static_cast<size_t>(projection_[oi])]);
      Vector view = Vector::View(col.type(), col.buffer(), cursor_, window_rows);
      out->column(static_cast<int64_t>(oi)) =
          sel != nullptr ? view.WithSelection(sel) : std::move(view);
    }
    out->size = sel != nullptr ? sel->size() : window_rows;
    cursor_ = window_end;
    stats_.rows_emitted += out->size;
    *eof = cursor_ >= range_.end;
    return Status::OK();
  }
  *eof = true;
  return Status::OK();
}

}  // namespace indbml::exec
