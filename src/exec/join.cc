#include "exec/join.h"

#include <algorithm>
#include <cstring>

#include "common/config.h"
#include "common/memory_tracker.h"

namespace indbml::exec {

uint64_t HashKeyParts(const uint64_t* parts, size_t count) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < count; ++i) {
    h ^= parts[i];
    h *= 1099511628211ULL;
  }
  return h;
}

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   std::vector<ExprPtr> probe_keys,
                                   std::vector<ExprPtr> build_keys)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)) {
  types_ = probe_->output_types();
  names_ = probe_->output_names();
  for (DataType t : build_->output_types()) types_.push_back(t);
  for (const std::string& n : build_->output_names()) names_.push_back(n);
}

uint64_t HashJoinOperator::NormalizeKey(const Vector& v, int64_t row) {
  switch (v.type()) {
    case DataType::kBool:
      return v.bools()[row] ? 1 : 0;
    case DataType::kInt64:
      return static_cast<uint64_t>(v.ints()[row]);
    case DataType::kFloat: {
      // Bit-cast with -0.0 normalisation so 0.0f == -0.0f keys collide.
      float f = v.floats()[row];
      if (f == 0.0f) f = 0.0f;
      uint32_t bits;
      std::memcpy(&bits, &f, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

Status HashJoinOperator::EnsureBuilt(ExecContext* ctx) {
  build_data_ = QueryResult();
  build_data_.names = build_->output_names();
  build_data_.types = build_->output_types();
  INDBML_RETURN_NOT_OK(DrainAppend(build_.get(), ctx, &build_data_));
  int64_t row_index = 0;
  build_locator_.reserve(static_cast<size_t>(build_data_.num_rows));
  build_key_rows_.reserve(static_cast<size_t>(build_data_.num_rows));
  for (size_t c = 0; c < build_data_.chunks.size(); ++c) {
    const DataChunk& chunk = build_data_.chunks[c];
    std::vector<Vector> key_vecs;
    key_vecs.reserve(build_keys_.size());
    for (const auto& k : build_keys_) {
      Vector v(k->type);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*k, chunk, &v));
      // NormalizeKey reads raw typed pointers; key refs over a filtered
      // chunk arrive as selected views, so the build is a flatten boundary.
      v.Flatten();
      key_vecs.push_back(std::move(v));
    }
    for (int64_t r = 0; r < chunk.size; ++r) {
      std::vector<uint64_t> parts(build_keys_.size());
      for (size_t k = 0; k < key_vecs.size(); ++k) {
        parts[k] = NormalizeKey(key_vecs[k], r);
      }
      uint64_t h = HashKeyParts(parts.data(), parts.size());
      hash_table_.emplace(h, row_index);
      build_key_rows_.push_back(std::move(parts));
      build_locator_.emplace_back(static_cast<int32_t>(c), static_cast<int32_t>(r));
      ++row_index;
    }
  }
  // Report hash-table overhead (the chunks themselves are tracked by their
  // Vectors).
  int64_t overhead = static_cast<int64_t>(
      hash_table_.size() * (sizeof(uint64_t) + sizeof(int64_t) + 16) +
      build_key_rows_.size() * (build_keys_.size() * 8 + 24) +
      build_locator_.size() * 8);
  MemoryTracker::Global().Allocate(overhead - tracked_bytes_);
  tracked_bytes_ = overhead;
  built_ = true;
  return Status::OK();
}

void HashJoinOperator::ClearBuild() {
  build_data_ = QueryResult();
  build_key_rows_.clear();
  hash_table_.clear();
  build_locator_.clear();
  MemoryTracker::Global().Free(tracked_bytes_);
  tracked_bytes_ = 0;
  built_ = false;
}

HashJoinOperator::~HashJoinOperator() {
  MemoryTracker::Global().Free(tracked_bytes_);
}

Status HashJoinOperator::Open(ExecContext* ctx) {
  // Both children stay open until Close; the build side is drained lazily
  // by the first Next (EnsureBuilt), so morsel Rewinds can re-target a
  // morsel-driven build child before any materialisation happens.
  INDBML_RETURN_NOT_OK(build_->Open(ctx));
  INDBML_RETURN_NOT_OK(probe_->Open(ctx));
  built_ = false;
  probe_row_ = 0;
  probe_eof_ = false;
  probe_chunk_valid_ = false;
  return Status::OK();
}

Status HashJoinOperator::Rewind(ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(probe_->Rewind(ctx));
  probe_row_ = 0;
  probe_eof_ = false;
  probe_chunk_valid_ = false;
  if (build_->MorselDriven()) {
    ClearBuild();
    INDBML_RETURN_NOT_OK(build_->Rewind(ctx));
  }
  return Status::OK();
}

Status HashJoinOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  *eof = false;
  if (!built_) INDBML_RETURN_NOT_OK(EnsureBuilt(ctx));
  const int64_t probe_width = static_cast<int64_t>(probe_->output_types().size());
  for (;;) {
    if (!probe_chunk_valid_) {
      if (probe_eof_) {
        *eof = true;
        return Status::OK();
      }
      probe_chunk_.Reset(probe_->output_types());
      INDBML_RETURN_NOT_OK(probe_->Next(ctx, &probe_chunk_, &probe_eof_));
      probe_row_ = 0;
      if (probe_chunk_.size == 0) {
        if (probe_eof_) {
          *eof = true;
          return Status::OK();
        }
        continue;
      }
      probe_key_vecs_.clear();
      for (const auto& k : probe_keys_) {
        Vector v(k->type);
        INDBML_RETURN_NOT_OK(EvaluateExpr(*k, probe_chunk_, &v));
        v.Flatten();
        probe_key_vecs_.push_back(std::move(v));
      }
      probe_chunk_valid_ = true;
    }

    std::vector<uint64_t> parts(probe_keys_.size());
    for (; probe_row_ < probe_chunk_.size; ++probe_row_) {
      for (size_t k = 0; k < probe_key_vecs_.size(); ++k) {
        parts[k] = NormalizeKey(probe_key_vecs_[k], probe_row_);
      }
      uint64_t h = HashKeyParts(parts.data(), parts.size());
      auto [begin, end] = hash_table_.equal_range(h);
      for (auto it = begin; it != end; ++it) {
        const auto& build_parts = build_key_rows_[static_cast<size_t>(it->second)];
        if (!std::equal(parts.begin(), parts.end(), build_parts.begin())) continue;
        auto [bc, br] = build_locator_[static_cast<size_t>(it->second)];
        // Emit probe columns then build columns.
        for (int64_t c = 0; c < probe_width; ++c) {
          out->column(c).Append(probe_chunk_.column(c).GetValue(probe_row_));
        }
        const DataChunk& bchunk = build_data_.chunks[static_cast<size_t>(bc)];
        for (int64_t c = 0; c < bchunk.num_columns(); ++c) {
          out->column(probe_width + c).Append(bchunk.column(c).GetValue(br));
        }
        ++out->size;
      }
      if (out->size >= kDefaultVectorSize) {
        ++probe_row_;
        return Status::OK();
      }
    }
    probe_chunk_valid_ = false;
    if (probe_eof_) {
      *eof = true;
      return Status::OK();
    }
    if (out->size >= kDefaultVectorSize) return Status::OK();
  }
}

void HashJoinOperator::Close(ExecContext* ctx) {
  probe_->Close(ctx);
  build_->Close(ctx);
}

int64_t HashJoinOperator::BuildBytes() const {
  int64_t bytes = build_data_.MemoryBytes();
  bytes += static_cast<int64_t>(hash_table_.size() *
                                (sizeof(uint64_t) + sizeof(int64_t) + 16));
  bytes += static_cast<int64_t>(build_key_rows_.size() * build_keys_.size() * 8);
  return bytes;
}

CrossJoinOperator::CrossJoinOperator(OperatorPtr left, OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  types_ = left_->output_types();
  names_ = left_->output_names();
  for (DataType t : right_->output_types()) types_.push_back(t);
  for (const std::string& n : right_->output_names()) names_.push_back(n);
}

Status CrossJoinOperator::Open(ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(right_->Open(ctx));
  INDBML_RETURN_NOT_OK(left_->Open(ctx));
  right_materialized_ = false;
  left_row_ = 0;
  right_row_ = 0;
  left_eof_ = false;
  left_chunk_valid_ = false;
  return Status::OK();
}

Status CrossJoinOperator::EnsureMaterialized(ExecContext* ctx) {
  right_data_ = QueryResult();
  right_data_.names = right_->output_names();
  right_data_.types = right_->output_types();
  INDBML_RETURN_NOT_OK(DrainAppend(right_.get(), ctx, &right_data_));
  right_locator_.clear();
  right_locator_.reserve(static_cast<size_t>(right_data_.num_rows));
  for (size_t c = 0; c < right_data_.chunks.size(); ++c) {
    for (int64_t r = 0; r < right_data_.chunks[c].size; ++r) {
      right_locator_.emplace_back(static_cast<int32_t>(c), static_cast<int32_t>(r));
    }
  }
  right_materialized_ = true;
  return Status::OK();
}

Status CrossJoinOperator::Rewind(ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(left_->Rewind(ctx));
  left_row_ = 0;
  right_row_ = 0;
  left_eof_ = false;
  left_chunk_valid_ = false;
  if (right_->MorselDriven()) {
    right_data_ = QueryResult();
    right_locator_.clear();
    right_materialized_ = false;
    INDBML_RETURN_NOT_OK(right_->Rewind(ctx));
  }
  return Status::OK();
}

Status CrossJoinOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  *eof = false;
  if (!right_materialized_) INDBML_RETURN_NOT_OK(EnsureMaterialized(ctx));
  const int64_t left_width = static_cast<int64_t>(left_->output_types().size());
  if (right_data_.num_rows == 0) {
    *eof = true;
    return Status::OK();
  }
  for (;;) {
    if (!left_chunk_valid_) {
      if (left_eof_) {
        *eof = true;
        return Status::OK();
      }
      left_chunk_.Reset(left_->output_types());
      INDBML_RETURN_NOT_OK(left_->Next(ctx, &left_chunk_, &left_eof_));
      left_row_ = 0;
      right_row_ = 0;
      if (left_chunk_.size == 0) {
        if (left_eof_) {
          *eof = true;
          return Status::OK();
        }
        continue;
      }
      left_chunk_valid_ = true;
    }
    while (left_row_ < left_chunk_.size) {
      while (right_row_ < right_data_.num_rows) {
        auto [rc, rr] = right_locator_[static_cast<size_t>(right_row_)];
        for (int64_t c = 0; c < left_width; ++c) {
          out->column(c).Append(left_chunk_.column(c).GetValue(left_row_));
        }
        const DataChunk& rchunk = right_data_.chunks[static_cast<size_t>(rc)];
        for (int64_t c = 0; c < rchunk.num_columns(); ++c) {
          out->column(left_width + c).Append(rchunk.column(c).GetValue(rr));
        }
        ++out->size;
        ++right_row_;
        if (out->size >= kDefaultVectorSize) return Status::OK();
      }
      right_row_ = 0;
      ++left_row_;
    }
    left_chunk_valid_ = false;
    if (left_eof_) {
      *eof = true;
      return Status::OK();
    }
  }
}

void CrossJoinOperator::Close(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
}

}  // namespace indbml::exec
