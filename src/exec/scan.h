#ifndef INDBML_EXEC_SCAN_H_
#define INDBML_EXEC_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace indbml::exec {

/// A comparison predicate pushed into the scan; used both for row-level
/// filtering and for MinMax block pruning (paper §4.4: Small Materialized
/// Aggregates / zone maps let joins with a layer filter skip blocks of the
/// model table).
struct ScanPredicate {
  int column = 0;      ///< index into the scanned (projected) columns' table slots
  BinaryOp op = BinaryOp::kEq;  ///< kEq/kNe/kLt/kLe/kGt/kGe
  Value value;
};

/// Statistics a scan reports after Close (observability + pruning tests).
struct ScanStats {
  int64_t blocks_total = 0;
  int64_t blocks_pruned = 0;
  int64_t rows_emitted = 0;
};

/// \brief Columnar table scan over one partition with optional pushed
/// predicates and zone-map block pruning.
///
/// In zero-copy mode (the default) the scan never touches row data to emit
/// a chunk: each Next() produces Vector views sharing the table columns'
/// buffers, and pushed predicates become a SelectionVector over the window
/// instead of a survivor copy. The legacy materialising path is kept behind
/// `zero_copy = false` for the conversion ablation benchmark.
class TableScanOperator final : public Operator {
 public:
  /// Tag type selecting the morsel-bound constructor.
  struct MorselBound {};

  /// `columns`: table column indexes to emit, in order.
  TableScanOperator(storage::TablePtr table, storage::PartitionRange range,
                    std::vector<int> columns, std::vector<ScanPredicate> predicates,
                    bool zero_copy = true);

  /// Morsel-bound scan: the row range is not fixed at plan time but
  /// re-targeted by every Rewind from the morsel range published in the
  /// ExecContext (exec/morsel.h). Until the first Rewind the scan is empty.
  TableScanOperator(MorselBound, storage::TablePtr table, std::vector<int> columns,
                    std::vector<ScanPredicate> predicates, bool zero_copy = true);

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return morsel_bound_; }

  const ScanStats& stats() const { return stats_; }

 private:
  /// True if the block [block_begin, block_end) can be skipped entirely.
  bool CanPruneBlock(int64_t block_index) const;
  /// True if row `r` passes all pushed predicates.
  bool RowPasses(int64_t r) const;
  /// The pre-refactor row-at-a-time copying scan (`zero_copy = false`).
  Status NextMaterialized(DataChunk* out, bool* eof);

  storage::TablePtr table_;
  storage::PartitionRange range_;
  std::vector<int> columns_;
  std::vector<ScanPredicate> predicates_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;
  bool morsel_bound_ = false;
  bool zero_copy_ = true;
  int64_t cursor_ = 0;
  ScanStats stats_;
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_SCAN_H_
