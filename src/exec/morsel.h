#ifndef INDBML_EXEC_MORSEL_H_
#define INDBML_EXEC_MORSEL_H_

#include <atomic>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace indbml::exec {

/// One unit of scheduling work: a contiguous row range of the partitioned
/// base table, plus its position in global row order (used by the
/// ResultCollector to reassemble the serial row order).
struct Morsel {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive
  int64_t index = 0;
};

/// Splits `table` into contiguous morsels of ~`morsel_rows` rows each.
///
/// When the table declares a unique-id column of type Int64, each morsel
/// boundary is extended forward while the id value does not change, so rows
/// sharing an id (e.g. the per-(id, node) model-table layout of paper §4.2)
/// never straddle two morsels. That keeps id-rooted streaming aggregation
/// over a morsel row-identical to serial execution: every group is fully
/// contained in exactly one morsel.
std::vector<storage::PartitionRange> MakeMorsels(const storage::Table& table,
                                                 int64_t morsel_rows);

/// \brief Shared work queue of morsels with an atomic claim cursor.
///
/// All pipeline workers pull from the same source until it runs dry — the
/// morsel-driven scheduling of Leis et al., replacing the static
/// partition-per-thread assignment. Each morsel is handed out exactly once.
/// Not movable/copyable (atomics); build the morsel vector with MakeMorsels
/// and pass it in.
class MorselSource {
 public:
  explicit MorselSource(std::vector<storage::PartitionRange> morsels)
      : morsels_(std::move(morsels)) {}

  MorselSource(const MorselSource&) = delete;
  MorselSource& operator=(const MorselSource&) = delete;

  /// Claims the next morsel. Returns false when the queue is dry or the
  /// source was aborted (a worker failed; the rest stop pulling).
  bool Next(Morsel* out) {
    if (aborted_.load(std::memory_order_acquire)) return false;
    int64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= static_cast<int64_t>(morsels_.size())) return false;
    out->begin = morsels_[static_cast<size_t>(i)].begin;
    out->end = morsels_[static_cast<size_t>(i)].end;
    out->index = i;
    return true;
  }

  /// Stops further hand-outs (error propagation between workers).
  void Abort() { aborted_.store(true, std::memory_order_release); }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  int64_t num_morsels() const { return static_cast<int64_t>(morsels_.size()); }

 private:
  std::vector<storage::PartitionRange> morsels_;  ///< immutable after ctor
  /// lock-free: cursor_ hands out each index exactly once via relaxed
  /// fetch_add (morsels_ is immutable, so no ordering is needed for the
  /// read). aborted_ uses release/acquire so whatever the aborting worker
  /// wrote before Abort() is visible to workers that observe the stop.
  std::atomic<int64_t> cursor_{0};
  std::atomic<bool> aborted_{false};
};

/// \brief Reassembles per-morsel output batches into global row order.
///
/// One slot per morsel, written by exactly the worker that claimed that
/// morsel (slots are disjoint, so no per-slot locking; the executor's
/// join/WaitIdle provides the happens-before edge to Assemble). The result
/// schema is recorded once, first worker wins.
class ResultCollector {
 public:
  explicit ResultCollector(int64_t num_morsels)
      : batches_(static_cast<size_t>(num_morsels)) {}

  void SetSchema(const std::vector<std::string>& names,
                 const std::vector<DataType>& types) INDBML_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (have_schema_) return;
    names_ = names;
    types_ = types;
    have_schema_ = true;
  }

  /// Records the output of morsel `index`. Called at most once per index.
  void Add(int64_t index, std::vector<DataChunk> chunks, int64_t rows) {
    Batch& b = batches_[static_cast<size_t>(index)];
    b.chunks = std::move(chunks);
    b.rows = rows;
  }

  /// Concatenates all batches in morsel order. Call only after all workers
  /// finished (consumes the batches).
  QueryResult Assemble() INDBML_EXCLUDES(mu_) {
    QueryResult merged;
    {
      MutexLock lock(mu_);
      merged.names = names_;
      merged.types = types_;
    }
    for (Batch& b : batches_) {
      merged.num_rows += b.rows;
      for (DataChunk& chunk : b.chunks) merged.chunks.push_back(std::move(chunk));
      b.chunks.clear();
    }
    return merged;
  }

 private:
  struct Batch {
    std::vector<DataChunk> chunks;
    int64_t rows = 0;
  };

  /// Deliberately *not* guarded: slot `i` is written only by the single
  /// worker that claimed morsel `i` (slots are disjoint), and Assemble runs
  /// after the executor's WaitIdle, which provides the happens-before edge.
  std::vector<Batch> batches_;
  Mutex mu_;
  bool have_schema_ INDBML_GUARDED_BY(mu_) = false;
  std::vector<std::string> names_ INDBML_GUARDED_BY(mu_);
  std::vector<DataType> types_ INDBML_GUARDED_BY(mu_);
};

/// \brief First-error-wins sink shared by concurrent pipeline workers.
///
/// Local `std::mutex` + `Status` pairs cannot carry thread-safety
/// annotations (only members can be GUARDED_BY), so the executors share
/// this small annotated class instead.
class FirstError {
 public:
  /// Records `s` if it is the first non-OK status seen.
  void Record(const Status& s) INDBML_EXCLUDES(mu_) {
    if (s.ok()) return;
    MutexLock lock(mu_);
    if (first_.ok()) first_ = s;
  }

  /// The first recorded error, or OK. Call after workers are joined for an
  /// authoritative answer.
  Status Get() const INDBML_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return first_;
  }

 private:
  mutable Mutex mu_;
  Status first_ INDBML_GUARDED_BY(mu_);
};

/// Runs one claimed morsel on an *open* operator tree: publishes the row
/// range via `ctx`, Rewinds the plan, drains it, and records the tagged
/// batch in the collector. Shared by the per-query pipeline executor below
/// and the multi-query shared executor (server/executor.h), so both
/// schedule the identical unit of work.
Status RunMorsel(Operator* root, ExecContext* ctx, const Morsel& morsel,
                 ResultCollector* collector);

/// Creates the private operator-tree instance for one pipeline worker.
/// Shared state (the ModelJoin's shared model, the morsel source binding)
/// is captured inside the factory.
using WorkerPlanFactory = std::function<Result<OperatorPtr>(int worker)>;

/// \brief Runs `num_workers` private plans over a shared MorselSource.
///
/// Each worker Opens its plan once (Open participates in cross-worker
/// barriers such as the ModelJoin build, so it runs even when the source is
/// already dry), then loops: claim a morsel, publish its range via the
/// ExecContext, Rewind the plan, drain it, hand the tagged chunks to the
/// ResultCollector. On error the worker aborts the source so the others
/// stop pulling. Plans always get Closed.
///
/// Runs on `pool` when provided and num_workers > 1, serially otherwise.
/// `num_workers` must not exceed `pool->num_threads()` — Open-time barriers
/// require all workers to run concurrently.
Result<QueryResult> ExecutePipeline(const WorkerPlanFactory& factory,
                                    MorselSource* source, int num_workers,
                                    storage::Catalog* catalog, ThreadPool* pool);

}  // namespace indbml::exec

#endif  // INDBML_EXEC_MORSEL_H_
