#ifndef INDBML_EXEC_PROFILE_H_
#define INDBML_EXEC_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace indbml::exec {

/// \brief EXPLAIN ANALYZE statistics of one operator instance (one plan
/// node in one worker).
///
/// Durations are nanoseconds (worker-level slices of small queries are
/// well below a microsecond) and cumulative: an operator's `next_nanos`
/// includes the time its children spent producing input, exactly like the
/// per-node times of PostgreSQL's EXPLAIN ANALYZE.
struct OperatorStats {
  int64_t rows = 0;
  int64_t chunks = 0;
  int64_t open_nanos = 0;
  int64_t next_nanos = 0;
  int64_t close_nanos = 0;
  /// Time spent re-arming the operator between morsels (morsel-driven
  /// execution only; zero under the static/serial paths).
  int64_t rewind_nanos = 0;
  /// Named sub-phase timings recorded by the operator body itself, e.g.
  /// the ModelJoin's "build"/"inference"/"convert" split (paper §5.2/§5.3)
  /// or the C-API runtime's "convert"/"run" split (§6.1).
  std::map<std::string, int64_t> phase_nanos;

  void AddPhase(const std::string& name, int64_t nanos) {
    phase_nanos[name] += nanos;
  }
  void MergeFrom(const OperatorStats& other);
};

/// \brief Per-query profile: one OperatorStats slot per (plan node,
/// worker).
///
/// Life cycle: the physical planner registers every plan node pre-order
/// (RegisterNode) and sizes the slot matrix (SetNumWorkers); during
/// execution each worker's ProfiledOperator wrappers write their own
/// slot, so the hot path is unsynchronised; afterwards ToString() renders
/// the annotated plan tree with worker-aggregated stats.
class QueryProfile {
 public:
  /// Registers a plan node (pre-order); returns its node id.
  int RegisterNode(std::string label, int depth);
  /// Allocates the per-worker slots; call after all RegisterNode calls.
  void SetNumWorkers(int n);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_workers() const { return num_workers_; }
  const std::string& node_label(int node) const { return nodes_[node].label; }

  OperatorStats* slot(int node, int worker) {
    return &slots_[static_cast<size_t>(node) * static_cast<size_t>(num_workers_) +
                   static_cast<size_t>(worker)];
  }

  /// Node stats summed over all workers.
  OperatorStats Aggregate(int node) const;

  void set_wall_nanos(int64_t nanos) { wall_nanos_ = nanos; }
  int64_t wall_nanos() const { return wall_nanos_; }
  /// Peak tracked allocation during the query (memory_tracker.h).
  void set_peak_memory_bytes(int64_t bytes) { peak_memory_bytes_ = bytes; }
  int64_t peak_memory_bytes() const { return peak_memory_bytes_; }

  /// The annotated plan tree ("EXPLAIN ANALYZE" rendering).
  std::string ToString() const;

 private:
  struct Node {
    std::string label;
    int depth;
  };
  std::vector<Node> nodes_;
  int num_workers_ = 0;
  std::vector<OperatorStats> slots_;  ///< [node * num_workers + worker]
  int64_t wall_nanos_ = 0;
  int64_t peak_memory_bytes_ = -1;
};

/// \brief Profiling decorator around any Operator: times Open/Next/Close,
/// counts rows and chunks, and exposes its stats slot through
/// `ExecContext::active_stats` while a call is in flight so the wrapped
/// operator can add named phase timings. Only instantiated when a profile
/// was requested — unprofiled execution pays nothing.
class ProfiledOperator final : public Operator {
 public:
  ProfiledOperator(OperatorPtr inner, QueryProfile* profile, int node_id)
      : inner_(std::move(inner)), profile_(profile), node_id_(node_id) {}

  const std::vector<DataType>& output_types() const override {
    return inner_->output_types();
  }
  const std::vector<std::string>& output_names() const override {
    return inner_->output_names();
  }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override;
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return inner_->MorselDriven(); }

 private:
  OperatorPtr inner_;
  QueryProfile* profile_;
  int node_id_;
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_PROFILE_H_
