#ifndef INDBML_EXEC_JOIN_H_
#define INDBML_EXEC_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace indbml::exec {

/// \brief Inner hash join.
///
/// The right child is the build side (materialised into a hash table during
/// Open — the ModelJoin pattern joins a small model table on the build side
/// against a streaming fact/intermediate probe side, paper Fig. 5). Output
/// preserves probe-side order, which the optimizer uses to keep pipelines
/// eligible for order-based aggregation (§4.4).
///
/// Key expressions are evaluated against the respective child's chunks.
/// Residual (non-equi) predicates are planned as a Filter above the join.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                   std::vector<ExprPtr> probe_keys, std::vector<ExprPtr> build_keys);
  ~HashJoinOperator() override;

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override;
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override {
    return probe_->MorselDriven() || build_->MorselDriven();
  }

  /// Bytes held by the build-side hash table (memory experiments).
  int64_t BuildBytes() const;

 private:
  /// Normalises one key vector row into a hashable 64-bit representation.
  static uint64_t NormalizeKey(const Vector& v, int64_t row);

  /// Materialises the (already open) build child into the hash table on the
  /// first Next after Open — lazily, so a morsel-driven probe side can be
  /// Rewound before any build work happens. Build state survives Rewinds
  /// unless the build side itself is morsel-driven.
  Status EnsureBuilt(ExecContext* ctx);
  void ClearBuild();

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<ExprPtr> probe_keys_;
  std::vector<ExprPtr> build_keys_;

  std::vector<DataType> types_;
  std::vector<std::string> names_;

  /// Materialised build side (columnar) + hash table from composite key
  /// hash to build row indexes.
  QueryResult build_data_;
  std::vector<std::vector<uint64_t>> build_key_rows_;  ///< [row][key]
  std::unordered_multimap<uint64_t, int64_t> hash_table_;
  /// (chunk,row) locator per global build row index.
  std::vector<std::pair<int32_t, int32_t>> build_locator_;
  /// Hash-table bytes reported to the MemoryTracker (freed on destruction).
  int64_t tracked_bytes_ = 0;
  bool built_ = false;

  // Probe streaming state.
  DataChunk probe_chunk_;
  std::vector<Vector> probe_key_vecs_;
  int64_t probe_row_ = 0;
  bool probe_eof_ = false;
  bool probe_chunk_valid_ = false;
};

/// \brief Cross join: materialises the right side and emits left x right in
/// left-major order (order-preserving in the left input, paper §4.4).
class CrossJoinOperator final : public Operator {
 public:
  CrossJoinOperator(OperatorPtr left, OperatorPtr right);

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override;
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override {
    return left_->MorselDriven() || right_->MorselDriven();
  }

 private:
  /// Materialises the (already open) right child on the first Next after
  /// Open; kept across Rewinds unless the right side is morsel-driven.
  Status EnsureMaterialized(ExecContext* ctx);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;

  QueryResult right_data_;
  std::vector<std::pair<int32_t, int32_t>> right_locator_;
  bool right_materialized_ = false;

  DataChunk left_chunk_;
  int64_t left_row_ = 0;
  int64_t right_row_ = 0;
  bool left_eof_ = false;
  bool left_chunk_valid_ = false;
};

/// FNV-1a style mixing of multiple 64-bit key parts.
uint64_t HashKeyParts(const uint64_t* parts, size_t count);

}  // namespace indbml::exec

#endif  // INDBML_EXEC_JOIN_H_
