#ifndef INDBML_EXEC_VALIDATE_H_
#define INDBML_EXEC_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/validation.h"
#include "exec/operator.h"

namespace indbml::exec {

/// \brief Runtime invariant validators for the data flowing between
/// operators (enabled by `INDBML_VALIDATE=1`, see common/validation.h).
///
/// The validators catch the bug classes that silently corrupt benchmark
/// results instead of crashing: a chunk whose columns disagree on length, a
/// selection/row index pointing outside its source chunk, or a NaN escaping
/// an operator that has no business producing one.

/// Options for ValidateChunk.
struct ChunkValidationOptions {
  /// Model-output chunks may legitimately carry NaN/Inf (the model computed
  /// it); everything else propagating a NaN is a corrupted intermediate.
  bool allow_non_finite = false;
};

/// Checks one inter-operator chunk: column count and types match `types`,
/// every column's length equals `chunk.size`, each column's selection
/// vector (if any) stays inside its base window, and float columns are
/// finite unless `allow_non_finite`. `where` names the producing operator
/// for the error message.
Status ValidateChunk(const DataChunk& chunk, const std::vector<DataType>& types,
                     const std::string& where,
                     const ChunkValidationOptions& options = {});

/// Checks that all `n` row/selection indices in `sel` lie inside
/// `[0, input_size)` (filter/scan selection vectors, join gather paths).
Status ValidateSelection(const int32_t* sel, int64_t n, int64_t input_size,
                         const std::string& where);

/// \brief Validation decorator around any Operator: re-checks every chunk
/// the wrapped operator emits. Instantiated by the physical planner only
/// when validation is enabled, so normal execution pays nothing.
class ValidatingOperator final : public Operator {
 public:
  ValidatingOperator(OperatorPtr inner, std::string label, bool allow_non_finite)
      : inner_(std::move(inner)),
        label_(std::move(label)),
        allow_non_finite_(allow_non_finite) {}

  const std::vector<DataType>& output_types() const override {
    return inner_->output_types();
  }
  const std::vector<std::string>& output_names() const override {
    return inner_->output_names();
  }

  Status Open(ExecContext* ctx) override { return inner_->Open(ctx); }
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { inner_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override { return inner_->Rewind(ctx); }
  bool MorselDriven() const override { return inner_->MorselDriven(); }

 private:
  OperatorPtr inner_;
  std::string label_;
  bool allow_non_finite_;
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_VALIDATE_H_
