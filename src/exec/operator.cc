#include "exec/operator.h"

#include "common/config.h"
#include "common/string_util.h"

namespace indbml::exec {

Value QueryResult::GetValue(int64_t row, int64_t col) const {
  for (const DataChunk& chunk : chunks) {
    if (row < chunk.size) return chunk.column(col).GetValue(row);
    row -= chunk.size;
  }
  INDBML_LOG(Fatal) << "row out of range";
  return Value();
}

Result<int> QueryResult::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (EqualsIgnoreCase(names[i], name)) return static_cast<int>(i);
  }
  return Status::NotFound("result column '" + name + "' not found");
}

storage::TablePtr QueryResult::ToTable(const std::string& table_name) const {
  std::vector<storage::Field> fields;
  for (size_t i = 0; i < names.size(); ++i) {
    fields.push_back({names[i], types[i]});
  }
  auto table = std::make_shared<storage::Table>(table_name, fields);
  table->Reserve(num_rows);
  for (const DataChunk& chunk : chunks) {
    for (int64_t r = 0; r < chunk.size; ++r) {
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(chunk.num_columns()));
      for (int64_t c = 0; c < chunk.num_columns(); ++c) {
        row.push_back(chunk.column(c).GetValue(r));
      }
      INDBML_CHECK(table->AppendRow(row).ok());
    }
  }
  table->Finalize();
  return table;
}

int64_t QueryResult::MemoryBytes() const {
  int64_t total = 0;
  for (const DataChunk& chunk : chunks) {
    for (const Vector& v : chunk.columns) {
      total += v.size() * DataTypeSize(v.type());
    }
  }
  return total;
}

Status Operator::Rewind(ExecContext*) {
  return Status::NotImplemented(
      "operator does not support morsel-driven re-execution (Rewind)");
}

Status DrainAppend(Operator* root, ExecContext* ctx, QueryResult* result) {
  bool eof = false;
  while (!eof) {
    DataChunk chunk;
    chunk.Reset(result->types);
    INDBML_RETURN_NOT_OK(root->Next(ctx, &chunk, &eof));
    if (chunk.size > 0) {
      result->num_rows += chunk.size;
      result->chunks.push_back(std::move(chunk));
    }
  }
  return Status::OK();
}

Result<QueryResult> DrainOperator(Operator* root, ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(root->Open(ctx));
  QueryResult result;
  result.names = root->output_names();
  result.types = root->output_types();
  INDBML_RETURN_NOT_OK(DrainAppend(root, ctx, &result));
  root->Close(ctx);
  return result;
}

void AppendRowTo(const DataChunk& src, int64_t row, DataChunk* dst) {
  for (int64_t c = 0; c < src.num_columns(); ++c) {
    dst->column(c).Append(src.column(c).GetValue(row));
  }
  ++dst->size;
}

}  // namespace indbml::exec
