#ifndef INDBML_EXEC_PARALLEL_H_
#define INDBML_EXEC_PARALLEL_H_

#include <functional>

#include "common/thread_pool.h"
#include "exec/operator.h"

namespace indbml::exec {

/// Creates the operator-tree instance for one partition. Each execution
/// thread gets a private plan over a contiguous partition of the fact table
/// (paper §4.4 / §5.2); shared state (e.g. the ModelJoin's shared model)
/// is captured inside the factory.
using OperatorFactory = std::function<Result<OperatorPtr>(int partition)>;

/// Runs `factory(p)` for p in [0, num_partitions) — on `pool` if provided,
/// serially otherwise — and concatenates the partition results in partition
/// order (partitions are contiguous row ranges, so concatenation preserves
/// the global row order).
Result<QueryResult> ExecuteParallel(const OperatorFactory& factory, int num_partitions,
                                    storage::Catalog* catalog, ThreadPool* pool);

}  // namespace indbml::exec

#endif  // INDBML_EXEC_PARALLEL_H_
