#include "exec/aggregate.h"

#include <cstring>

#include "common/config.h"
#include "common/memory_tracker.h"
#include "exec/join.h"

#include <algorithm>

namespace indbml::exec {

const char* AggFunctionName(AggFunction fn) {
  switch (fn) {
    case AggFunction::kSum:
      return "SUM";
    case AggFunction::kCount:
      return "COUNT";
    case AggFunction::kMin:
      return "MIN";
    case AggFunction::kMax:
      return "MAX";
    case AggFunction::kAvg:
      return "AVG";
  }
  return "?";
}

Value AggState::Finalize(AggFunction fn, DataType result_type) const {
  double v = 0;
  switch (fn) {
    case AggFunction::kSum:
      v = sum;
      break;
    case AggFunction::kCount:
      return Value::Int64(count);
    case AggFunction::kMin:
      v = min;
      break;
    case AggFunction::kMax:
      v = max;
      break;
    case AggFunction::kAvg:
      v = count > 0 ? sum / static_cast<double>(count) : 0;
      break;
  }
  switch (result_type) {
    case DataType::kInt64:
      return Value::Int64(static_cast<int64_t>(v));
    case DataType::kFloat:
      return Value::Float(static_cast<float>(v));
    case DataType::kBool:
      return Value::Bool(v != 0);
  }
  return Value();
}

namespace {

/// Shared helpers for both aggregation flavours.
std::vector<DataType> BuildTypes(const std::vector<ExprPtr>& groups,
                                 const std::vector<AggregateSpec>& aggs) {
  std::vector<DataType> types;
  for (const auto& g : groups) types.push_back(g->type);
  for (const auto& a : aggs) types.push_back(a.result_type);
  return types;
}

std::vector<std::string> BuildNames(const std::vector<std::string>& group_names,
                                    const std::vector<AggregateSpec>& aggs) {
  std::vector<std::string> names = group_names;
  for (const auto& a : aggs) names.push_back(a.name);
  return names;
}

/// Evaluates group keys and aggregate arguments for a chunk.
Status EvalChunk(const std::vector<ExprPtr>& groups,
                 const std::vector<AggregateSpec>& aggs, const DataChunk& in,
                 std::vector<Vector>* group_vecs, std::vector<Vector>* arg_vecs) {
  group_vecs->clear();
  for (const auto& g : groups) {
    Vector v(g->type);
    INDBML_RETURN_NOT_OK(EvaluateExpr(*g, in, &v));
    // KeyPart/ArgValue read raw typed pointers, so aggregation is a flatten
    // boundary for selected views coming off a filtered scan.
    v.Flatten();
    group_vecs->push_back(std::move(v));
  }
  arg_vecs->clear();
  for (const auto& a : aggs) {
    Vector v(a.argument ? a.argument->type : DataType::kInt64);
    if (a.argument) {
      INDBML_RETURN_NOT_OK(EvaluateExpr(*a.argument, in, &v));
      v.Flatten();
    }
    arg_vecs->push_back(std::move(v));
  }
  return Status::OK();
}

uint64_t KeyPart(const Vector& v, int64_t row) {
  switch (v.type()) {
    case DataType::kBool:
      return v.bools()[row];
    case DataType::kInt64:
      return static_cast<uint64_t>(v.ints()[row]);
    case DataType::kFloat: {
      uint32_t bits;
      float f = v.floats()[row];
      std::memcpy(&bits, &f, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

double ArgValue(const Vector& v, int64_t row) {
  switch (v.type()) {
    case DataType::kBool:
      return v.bools()[row];
    case DataType::kInt64:
      return static_cast<double>(v.ints()[row]);
    case DataType::kFloat:
      return v.floats()[row];
  }
  return 0;
}

bool SameKey(const std::vector<Value>& a, const std::vector<Vector>& vecs,
             int64_t row) {
  for (size_t k = 0; k < a.size(); ++k) {
    const Value& va = a[k];
    Value vb = vecs[k].GetValue(row);
    if (va.type != vb.type) return false;
    switch (va.type) {
      case DataType::kBool:
        if (va.b != vb.b) return false;
        break;
      case DataType::kInt64:
        if (va.i != vb.i) return false;
        break;
      case DataType::kFloat:
        if (va.f != vb.f) return false;
        break;
    }
  }
  return true;
}

}  // namespace

HashAggregateOperator::HashAggregateOperator(OperatorPtr child,
                                             std::vector<ExprPtr> groups,
                                             std::vector<std::string> group_names,
                                             std::vector<AggregateSpec> aggregates)
    : child_(std::move(child)),
      groups_(std::move(groups)),
      aggregates_(std::move(aggregates)),
      types_(BuildTypes(groups_, aggregates_)),
      names_(BuildNames(group_names, aggregates_)) {}

Status HashAggregateOperator::Open(ExecContext* ctx) {
  table_.clear();
  emit_order_.clear();
  emit_cursor_ = 0;
  consumed_ = false;
  return child_->Open(ctx);
}

Status HashAggregateOperator::Rewind(ExecContext* ctx) {
  table_.clear();
  emit_order_.clear();
  emit_cursor_ = 0;
  consumed_ = false;
  return child_->Rewind(ctx);
}

Status HashAggregateOperator::Consume(ExecContext* ctx) {
  bool eof = false;
  std::vector<Vector> group_vecs;
  std::vector<Vector> arg_vecs;
  std::vector<uint64_t> parts(groups_.size());
  while (!eof) {
    in_.Reset(child_->output_types());
    INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, &eof));
    if (in_.size == 0) continue;
    const DataChunk& in = in_;
    INDBML_RETURN_NOT_OK(EvalChunk(groups_, aggregates_, in, &group_vecs, &arg_vecs));
    for (int64_t r = 0; r < in.size; ++r) {
      for (size_t k = 0; k < group_vecs.size(); ++k) {
        parts[k] = KeyPart(group_vecs[k], r);
      }
      uint64_t h = HashKeyParts(parts.data(), parts.size());
      auto& bucket = table_[h];
      GroupEntry* entry = nullptr;
      for (auto& candidate : bucket) {
        if (SameKey(candidate.key_values, group_vecs, r)) {
          entry = &candidate;
          break;
        }
      }
      if (entry == nullptr) {
        GroupEntry fresh;
        fresh.key_values.reserve(groups_.size());
        for (size_t k = 0; k < group_vecs.size(); ++k) {
          fresh.key_values.push_back(group_vecs[k].GetValue(r));
        }
        fresh.states.resize(aggregates_.size());
        bucket.push_back(std::move(fresh));
        entry = &bucket.back();
      }
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        double v = aggregates_[a].argument ? ArgValue(arg_vecs[a], r) : 1.0;
        entry->states[a].Update(v);
      }
    }
  }
  // SQL semantics: a global aggregate (no GROUP BY) over empty input still
  // produces one row (COUNT = 0, sums empty).
  if (groups_.empty() && table_.empty()) {
    GroupEntry empty_entry;
    empty_entry.states.resize(aggregates_.size());
    table_[0].push_back(std::move(empty_entry));
  }
  emit_order_.reserve(table_.size());
  for (const auto& [h, bucket] : table_) {
    for (const auto& entry : bucket) emit_order_.push_back(&entry);
  }
  int64_t bytes = HashTableBytes();
  MemoryTracker::Global().Allocate(bytes - tracked_bytes_);
  tracked_bytes_ = bytes;
  consumed_ = true;
  return Status::OK();
}

HashAggregateOperator::~HashAggregateOperator() {
  MemoryTracker::Global().Free(tracked_bytes_);
}

Status HashAggregateOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  if (!consumed_) INDBML_RETURN_NOT_OK(Consume(ctx));
  while (emit_cursor_ < emit_order_.size() && out->size < kDefaultVectorSize) {
    const GroupEntry& entry = *emit_order_[emit_cursor_++];
    int64_t col = 0;
    for (const Value& v : entry.key_values) {
      out->column(col++).Append(v);
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      out->column(col++).Append(
          entry.states[a].Finalize(aggregates_[a].function, aggregates_[a].result_type));
    }
    ++out->size;
  }
  *eof = emit_cursor_ >= emit_order_.size();
  return Status::OK();
}

int64_t HashAggregateOperator::HashTableBytes() const {
  int64_t bytes = 0;
  for (const auto& [h, bucket] : table_) {
    bytes += 48;  // bucket overhead
    for (const auto& entry : bucket) {
      bytes += static_cast<int64_t>(entry.key_values.size() * sizeof(Value) +
                                    entry.states.size() * sizeof(AggState));
    }
  }
  return bytes;
}

StreamingAggregateOperator::StreamingAggregateOperator(
    OperatorPtr child, std::vector<ExprPtr> groups,
    std::vector<std::string> group_names, std::vector<AggregateSpec> aggregates,
    int prefix_count)
    : child_(std::move(child)),
      groups_(std::move(groups)),
      aggregates_(std::move(aggregates)),
      types_(BuildTypes(groups_, aggregates_)),
      names_(BuildNames(group_names, aggregates_)),
      prefix_count_(prefix_count) {
  INDBML_CHECK(prefix_count_ >= 1 &&
               prefix_count_ <= static_cast<int>(groups_.size()))
      << "invalid sorted-prefix length";
}

Status StreamingAggregateOperator::Open(ExecContext* ctx) {
  group_active_ = false;
  input_eof_ = false;
  rest_groups_.clear();
  rest_insertion_order_.clear();
  peak_group_count_ = 0;
  return child_->Open(ctx);
}

Status StreamingAggregateOperator::Rewind(ExecContext* ctx) {
  group_active_ = false;
  input_eof_ = false;
  current_prefix_.clear();
  rest_groups_.clear();
  rest_insertion_order_.clear();
  // peak_group_count_ deliberately survives: it reports the peak across the
  // whole execution, morsels included.
  return child_->Rewind(ctx);
}

void StreamingAggregateOperator::FlushPrefixGroup(DataChunk* out) {
  int64_t group_count = 0;
  for (uint64_t h : rest_insertion_order_) {
    for (const GroupEntry& entry : rest_groups_[h]) {
      int64_t col = 0;
      for (const Value& v : current_prefix_) out->column(col++).Append(v);
      for (const Value& v : entry.rest_key) out->column(col++).Append(v);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        out->column(col++).Append(entry.states[a].Finalize(
            aggregates_[a].function, aggregates_[a].result_type));
      }
      ++out->size;
      ++group_count;
    }
  }
  peak_group_count_ = std::max(peak_group_count_, group_count);
  rest_groups_.clear();
  rest_insertion_order_.clear();
}

Status StreamingAggregateOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  *eof = false;
  std::vector<Vector> group_vecs;
  std::vector<Vector> arg_vecs;
  const size_t prefix = static_cast<size_t>(prefix_count_);
  const size_t rest = groups_.size() - prefix;
  std::vector<uint64_t> rest_parts(rest);
  while (!input_eof_ && out->size < kDefaultVectorSize) {
    in_.Reset(child_->output_types());
    INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, &input_eof_));
    if (in_.size == 0) continue;
    const DataChunk& in = in_;
    INDBML_RETURN_NOT_OK(EvalChunk(groups_, aggregates_, in, &group_vecs, &arg_vecs));
    for (int64_t r = 0; r < in.size; ++r) {
      bool same_prefix = group_active_;
      if (same_prefix) {
        for (size_t k = 0; k < prefix; ++k) {
          Value v = group_vecs[k].GetValue(r);
          const Value& p = current_prefix_[k];
          bool eq = v.type == p.type &&
                    (v.type == DataType::kInt64
                         ? v.i == p.i
                         : (v.type == DataType::kFloat ? v.f == p.f : v.b == p.b));
          if (!eq) {
            same_prefix = false;
            break;
          }
        }
      }
      if (!same_prefix) {
        if (group_active_) FlushPrefixGroup(out);
        current_prefix_.clear();
        for (size_t k = 0; k < prefix; ++k) {
          current_prefix_.push_back(group_vecs[k].GetValue(r));
        }
        group_active_ = true;
      }
      // Locate (or create) the rest-key group within the current prefix.
      for (size_t k = 0; k < rest; ++k) {
        rest_parts[k] = KeyPart(group_vecs[prefix + k], r);
      }
      uint64_t h = HashKeyParts(rest_parts.data(), rest_parts.size());
      auto [it, inserted] = rest_groups_.try_emplace(h);
      if (inserted) rest_insertion_order_.push_back(h);
      GroupEntry* entry = nullptr;
      for (auto& candidate : it->second) {
        bool eq = true;
        for (size_t k = 0; k < rest; ++k) {
          Value v = group_vecs[prefix + k].GetValue(r);
          const Value& p = candidate.rest_key[k];
          if (!(v.type == p.type &&
                (v.type == DataType::kInt64
                     ? v.i == p.i
                     : (v.type == DataType::kFloat ? v.f == p.f : v.b == p.b)))) {
            eq = false;
            break;
          }
        }
        if (eq) {
          entry = &candidate;
          break;
        }
      }
      if (entry == nullptr) {
        GroupEntry fresh;
        for (size_t k = 0; k < rest; ++k) {
          fresh.rest_key.push_back(group_vecs[prefix + k].GetValue(r));
        }
        fresh.states.resize(aggregates_.size());
        it->second.push_back(std::move(fresh));
        entry = &it->second.back();
      }
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        double v = aggregates_[a].argument ? ArgValue(arg_vecs[a], r) : 1.0;
        entry->states[a].Update(v);
      }
    }
  }
  if (input_eof_ && group_active_) {
    FlushPrefixGroup(out);
    group_active_ = false;
  }
  *eof = input_eof_ && !group_active_;
  return Status::OK();
}

}  // namespace indbml::exec
