#ifndef INDBML_EXEC_VECTOR_H_
#define INDBML_EXEC_VECTOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/config.h"
#include "common/logging.h"
#include "storage/types.h"

namespace indbml::exec {

using storage::DataType;
using storage::Value;

/// \brief Immutable list of row indices selecting a subset of a vector's
/// base window (DuckDB-style selection vector).
///
/// Shared by every column of a filtered chunk: a filter emits one
/// SelectionVector and attaches it to all of its input's column views
/// instead of re-materialising the survivors.
class SelectionVector {
 public:
  explicit SelectionVector(std::vector<int32_t> indices)
      : indices_(std::move(indices)) {}

  int64_t size() const { return static_cast<int64_t>(indices_.size()); }
  const int32_t* data() const { return indices_.data(); }
  int32_t operator[](int64_t i) const { return indices_[static_cast<size_t>(i)]; }

 private:
  std::vector<int32_t> indices_;
};

using SelectionPtr = std::shared_ptr<const SelectionVector>;

/// \brief One column's values for a batch of up to kDefaultVectorSize rows.
///
/// A Vector is a *view* until someone needs new storage. Three
/// representations share one class:
///
///  - **owned**: the vector holds the only reference to its Buffer and may
///    write it in place (fresh kernel outputs, flattened data);
///  - **view**: a contiguous window `[offset, offset + size)` over a shared
///    Buffer — zero-copy scans emit these straight over table storage;
///  - **view + selection**: the same window narrowed by a SelectionVector —
///    filters emit these instead of copying survivors.
///
/// Copying a Vector never copies data: the copy shares the Buffer and
/// becomes a view. Every mutating entry point (Resize growth, SetValue,
/// Append, the non-const data accessors) goes through EnsureWritable(),
/// which materialises a private flat buffer only when the current one is
/// shared or selected (copy-on-write). Operators that need contiguous rows
/// for pointer arithmetic call Flatten() explicitly; selection-agnostic
/// random access goes through GetValue()/Get*At(). Buffer-level
/// MemoryTracker accounting means a thousand views over one column cost one
/// column.
class Vector {
 public:
  Vector() : type_(DataType::kInt64) {}
  explicit Vector(DataType type) : type_(type) {}

  /// Copies share the buffer (the copy is a view); see class comment.
  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;

  Vector(Vector&& other) noexcept
      : type_(other.type_),
        size_(other.size_),
        base_rows_(other.base_rows_),
        offset_(other.offset_),
        buffer_(std::move(other.buffer_)),
        sel_(std::move(other.sel_)) {
    other.size_ = 0;
    other.base_rows_ = 0;
    other.offset_ = 0;
  }
  Vector& operator=(Vector&& other) noexcept {
    type_ = other.type_;
    size_ = other.size_;
    base_rows_ = other.base_rows_;
    offset_ = other.offset_;
    buffer_ = std::move(other.buffer_);
    sel_ = std::move(other.sel_);
    other.size_ = 0;
    other.base_rows_ = 0;
    other.offset_ = 0;
    return *this;
  }

  /// Zero-copy flat view over `rows` elements of `buffer` starting at
  /// element `offset` (scans use this to expose table storage directly).
  static Vector View(DataType type, BufferPtr buffer, int64_t offset,
                     int64_t rows) {
    Vector v(type);
    v.buffer_ = std::move(buffer);
    v.offset_ = offset;
    v.size_ = rows;
    v.base_rows_ = rows;
    return v;
  }

  /// This vector narrowed by `sel` (indices are *logical* rows of this
  /// vector, i.e. already-selected positions compose). Never copies data.
  Vector WithSelection(SelectionPtr sel) const {
    Vector v(type_);
    v.buffer_ = buffer_;
    v.offset_ = offset_;
    v.base_rows_ = base_rows_;
    if (sel_ == nullptr) {
      v.sel_ = std::move(sel);
    } else {
      // Compose: materialise indices (cheap — O(output rows), no data copy).
      std::vector<int32_t> composed;
      composed.reserve(static_cast<size_t>(sel->size()));
      for (int64_t i = 0; i < sel->size(); ++i) {
        composed.push_back((*sel_)[(*sel)[i]]);
      }
      v.sel_ = std::make_shared<const SelectionVector>(std::move(composed));
    }
    v.size_ = v.sel_->size();
    return v;
  }

  DataType type() const { return type_; }
  int64_t size() const { return size_; }

  bool has_selection() const { return sel_ != nullptr; }
  const SelectionVector* selection() const { return sel_.get(); }
  /// Length of the contiguous base window the selection indexes into
  /// (== size() for flat vectors).
  int64_t base_rows() const { return base_rows_; }
  /// The underlying shared buffer (lifetime tests / diagnostics).
  const BufferPtr& buffer() const { return buffer_; }

  /// Grows (copy-on-write, zero-filling new rows) or shrinks (in place,
  /// views keep their representation) to `n` logical rows.
  void Resize(int64_t n) {
    if (n <= size_) {
      size_ = n;
      if (sel_ == nullptr) base_rows_ = n;
      return;
    }
    EnsureWritable(n);
    uint8_t* base = buffer_->data();
    const int64_t elem = ElemSize();
    std::fill(base + size_ * elem, base + n * elem, uint8_t{0});
    size_ = n;
    base_rows_ = n;
  }

  /// Empties the vector. A private buffer is kept for reuse (the DataChunk
  /// Reset hot path); shared/selected buffers are released so the producer
  /// of the next batch starts from fresh storage.
  void Clear() {
    size_ = 0;
    base_rows_ = 0;
    if (sel_ != nullptr || offset_ != 0 ||
        (buffer_ != nullptr && buffer_.use_count() > 1)) {
      buffer_.reset();
      offset_ = 0;
      sel_.reset();
    }
  }

  /// Contiguous typed data. Valid only without a selection (flat views are
  /// contiguous; call Flatten() first if a selection may be present). The
  /// non-const overloads make the vector writable (copy-on-write).
  const uint8_t* bools() const {
    INDBML_DCHECK(sel_ == nullptr);
    return BaseBools();
  }
  const int64_t* ints() const {
    INDBML_DCHECK(sel_ == nullptr);
    return BaseInts();
  }
  const float* floats() const {
    INDBML_DCHECK(sel_ == nullptr);
    return BaseFloats();
  }
  uint8_t* bools() {
    EnsureWritable(size_);
    return buffer_ != nullptr ? buffer_->data() : nullptr;
  }
  int64_t* ints() {
    EnsureWritable(size_);
    return buffer_ != nullptr ? reinterpret_cast<int64_t*>(buffer_->data())
                              : nullptr;
  }
  float* floats() {
    EnsureWritable(size_);
    return buffer_ != nullptr ? reinterpret_cast<float*>(buffer_->data())
                              : nullptr;
  }

  /// Base-window typed pointers: element i is base row i, *before* the
  /// selection is applied. Gather kernels (exec/gather.h) hoist these plus
  /// selection()->data() out of their row loops.
  const uint8_t* BaseBools() const {
    INDBML_DCHECK(type_ == DataType::kBool);
    return buffer_ != nullptr ? buffer_->data() + offset_ : nullptr;
  }
  const int64_t* BaseInts() const {
    INDBML_DCHECK(type_ == DataType::kInt64);
    return buffer_ != nullptr
               ? reinterpret_cast<const int64_t*>(buffer_->data()) + offset_
               : nullptr;
  }
  const float* BaseFloats() const {
    INDBML_DCHECK(type_ == DataType::kFloat);
    return buffer_ != nullptr
               ? reinterpret_cast<const float*>(buffer_->data()) + offset_
               : nullptr;
  }

  /// Representation-agnostic typed row access (applies the selection).
  bool GetBoolAt(int64_t row) const { return BaseBools()[RowIndex(row)] != 0; }
  int64_t GetInt64At(int64_t row) const { return BaseInts()[RowIndex(row)]; }
  float GetFloatAt(int64_t row) const { return BaseFloats()[RowIndex(row)]; }

  Value GetValue(int64_t row) const {
    switch (type_) {
      case DataType::kBool:
        return Value::Bool(GetBoolAt(row));
      case DataType::kInt64:
        return Value::Int64(GetInt64At(row));
      case DataType::kFloat:
        return Value::Float(GetFloatAt(row));
    }
    return Value();
  }

  /// Stores `v` at `row`, coercing numerically if the value's type differs
  /// from the vector's type (used by CASE branches and casts).
  void SetValue(int64_t row, const Value& v) {
    EnsureWritable(size_);
    uint8_t* base = buffer_->data();
    switch (type_) {
      case DataType::kBool:
        base[row] = (v.type == DataType::kBool ? v.b : v.AsDouble() != 0) ? 1 : 0;
        break;
      case DataType::kInt64:
        reinterpret_cast<int64_t*>(base)[row] =
            v.type == DataType::kInt64 ? v.i : static_cast<int64_t>(v.AsDouble());
        break;
      case DataType::kFloat:
        reinterpret_cast<float*>(base)[row] =
            v.type == DataType::kFloat ? v.f : static_cast<float>(v.AsDouble());
        break;
    }
  }

  void Append(const Value& v) {
    Resize(size_ + 1);
    SetValue(size_ - 1, v);
  }

  /// Materialises selected rows into a private contiguous buffer; no-op for
  /// flat vectors. After Flatten() the contiguous accessors are valid and
  /// the vector is safe to mutate. Operators that need contiguous owned
  /// data (hash-join keys, aggregation, matrix packs) call this at their
  /// boundary; everything upstream stays zero-copy.
  void Flatten();

 private:
  int64_t ElemSize() const { return storage::DataTypeSize(type_); }

  int64_t RowIndex(int64_t row) const {
    return sel_ != nullptr ? (*sel_)[row] : row;
  }

  /// Guarantees a private (use_count == 1), offset-free, selection-free
  /// buffer with capacity for `min_rows` rows, preserving the current
  /// logical contents. The copy-on-write core of every mutator.
  void EnsureWritable(int64_t min_rows);

  DataType type_;
  int64_t size_ = 0;       ///< logical rows (== selection size when selected)
  int64_t base_rows_ = 0;  ///< contiguous window length behind the selection
  int64_t offset_ = 0;     ///< element offset of the window in the buffer
  BufferPtr buffer_;
  SelectionPtr sel_;
};

/// \brief A batch of rows in columnar layout: the unit of data flow between
/// operators (x100-style vectorized execution).
struct DataChunk {
  std::vector<Vector> columns;
  int64_t size = 0;

  /// Prepares the chunk for the given schema. When the chunk already has
  /// matching columns (the common Next() hot-path case: the same chunk is
  /// Reset between iterations) the column buffers are kept and merely
  /// cleared, so steady-state execution does not reallocate per batch.
  void Reset(const std::vector<DataType>& types) {
    if (columns.size() == types.size()) {
      bool same = true;
      for (size_t i = 0; i < types.size(); ++i) {
        if (columns[i].type() != types[i]) {
          same = false;
          break;
        }
      }
      if (same) {
        for (auto& c : columns) c.Clear();
        size = 0;
        return;
      }
    }
    columns.clear();
    columns.reserve(types.size());
    for (DataType t : types) columns.emplace_back(t);
    size = 0;
  }

  int64_t num_columns() const { return static_cast<int64_t>(columns.size()); }

  Vector& column(int64_t i) { return columns[static_cast<size_t>(i)]; }
  const Vector& column(int64_t i) const { return columns[static_cast<size_t>(i)]; }

  /// Sets every column's size to `n` (after writing data directly).
  void SetCardinality(int64_t n) {
    size = n;
    for (auto& c : columns) c.Resize(n);
  }
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_VECTOR_H_
