#ifndef INDBML_EXEC_VECTOR_H_
#define INDBML_EXEC_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "storage/types.h"

namespace indbml::exec {

using storage::DataType;
using storage::Value;

/// \brief One column's values for a batch of up to kDefaultVectorSize rows.
///
/// Vectors own their storage (operators materialise into fresh vectors);
/// this keeps lifetimes trivial at the cost of a copy out of base-table
/// storage during scans, which is negligible next to join/aggregate work.
class Vector {
 public:
  Vector() : type_(DataType::kInt64) {}
  explicit Vector(DataType type) : type_(type) {}

  ~Vector() { AdjustTracking(0); }
  Vector(const Vector& other)
      : type_(other.type_),
        size_(other.size_),
        bools_(other.bools_),
        ints_(other.ints_),
        floats_(other.floats_) {
    AdjustTracking(CapacityBytes());
  }
  Vector& operator=(const Vector& other) {
    type_ = other.type_;
    size_ = other.size_;
    bools_ = other.bools_;
    ints_ = other.ints_;
    floats_ = other.floats_;
    AdjustTracking(CapacityBytes());
    return *this;
  }
  Vector(Vector&& other) noexcept
      : type_(other.type_),
        size_(other.size_),
        bools_(std::move(other.bools_)),
        ints_(std::move(other.ints_)),
        floats_(std::move(other.floats_)),
        tracked_(other.tracked_) {
    other.tracked_ = 0;
    other.size_ = 0;
  }
  Vector& operator=(Vector&& other) noexcept {
    AdjustTracking(0);
    type_ = other.type_;
    size_ = other.size_;
    bools_ = std::move(other.bools_);
    ints_ = std::move(other.ints_);
    floats_ = std::move(other.floats_);
    tracked_ = other.tracked_;
    other.tracked_ = 0;
    other.size_ = 0;
    return *this;
  }

  DataType type() const { return type_; }
  int64_t size() const { return size_; }

  void Resize(int64_t n) {
    size_ = n;
    switch (type_) {
      case DataType::kBool:
        bools_.resize(static_cast<size_t>(n));
        break;
      case DataType::kInt64:
        ints_.resize(static_cast<size_t>(n));
        break;
      case DataType::kFloat:
        floats_.resize(static_cast<size_t>(n));
        break;
    }
    AdjustTracking(CapacityBytes());
  }

  void Clear() {
    size_ = 0;
    bools_.clear();
    ints_.clear();
    floats_.clear();
    AdjustTracking(CapacityBytes());
  }

  uint8_t* bools() { return bools_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  int64_t* ints() { return ints_.data(); }
  const int64_t* ints() const { return ints_.data(); }
  float* floats() { return floats_.data(); }
  const float* floats() const { return floats_.data(); }

  Value GetValue(int64_t row) const {
    switch (type_) {
      case DataType::kBool:
        return Value::Bool(bools_[static_cast<size_t>(row)] != 0);
      case DataType::kInt64:
        return Value::Int64(ints_[static_cast<size_t>(row)]);
      case DataType::kFloat:
        return Value::Float(floats_[static_cast<size_t>(row)]);
    }
    return Value();
  }

  /// Stores `v` at `row`, coercing numerically if the value's type differs
  /// from the vector's type (used by CASE branches and casts).
  void SetValue(int64_t row, const Value& v) {
    switch (type_) {
      case DataType::kBool:
        bools_[static_cast<size_t>(row)] =
            (v.type == DataType::kBool ? v.b : v.AsDouble() != 0) ? 1 : 0;
        break;
      case DataType::kInt64:
        ints_[static_cast<size_t>(row)] =
            v.type == DataType::kInt64 ? v.i : static_cast<int64_t>(v.AsDouble());
        break;
      case DataType::kFloat:
        floats_[static_cast<size_t>(row)] =
            v.type == DataType::kFloat ? v.f : static_cast<float>(v.AsDouble());
        break;
    }
  }

  void Append(const Value& v) {
    Resize(size_ + 1);
    SetValue(size_ - 1, v);
  }

 private:
  /// Buffer bytes currently held (capacity, not size).
  int64_t CapacityBytes() const {
    return static_cast<int64_t>(bools_.capacity() + ints_.capacity() * 8 +
                                floats_.capacity() * 4);
  }

  /// Keeps the global MemoryTracker in sync with this vector's buffers so
  /// materialised intermediate results show up in the Table-3 peak-memory
  /// experiment.
  void AdjustTracking(int64_t now) {
    if (now != tracked_) {
      MemoryTracker::Global().Allocate(now - tracked_);
      tracked_ = now;
    }
  }

  DataType type_;
  int64_t size_ = 0;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<float> floats_;
  int64_t tracked_ = 0;
};

/// \brief A batch of rows in columnar layout: the unit of data flow between
/// operators (x100-style vectorized execution).
struct DataChunk {
  std::vector<Vector> columns;
  int64_t size = 0;

  /// Prepares the chunk for the given schema. When the chunk already has
  /// matching columns (the common Next() hot-path case: the same chunk is
  /// Reset between iterations) the column buffers are kept and merely
  /// cleared, so steady-state execution does not reallocate per batch.
  void Reset(const std::vector<DataType>& types) {
    if (columns.size() == types.size()) {
      bool same = true;
      for (size_t i = 0; i < types.size(); ++i) {
        if (columns[i].type() != types[i]) {
          same = false;
          break;
        }
      }
      if (same) {
        for (auto& c : columns) c.Clear();
        size = 0;
        return;
      }
    }
    columns.clear();
    columns.reserve(types.size());
    for (DataType t : types) columns.emplace_back(t);
    size = 0;
  }

  int64_t num_columns() const { return static_cast<int64_t>(columns.size()); }

  Vector& column(int64_t i) { return columns[static_cast<size_t>(i)]; }
  const Vector& column(int64_t i) const { return columns[static_cast<size_t>(i)]; }

  /// Sets every column's size to `n` (after writing data directly).
  void SetCardinality(int64_t n) {
    size = n;
    for (auto& c : columns) c.Resize(n);
  }
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_VECTOR_H_
