#ifndef INDBML_INTEGRATION_EXTERNAL_CLIENT_H_
#define INDBML_INTEGRATION_EXTERNAL_CLIENT_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "nn/model.h"
#include "sql/query_engine.h"

namespace indbml::integration {

/// Transfer accounting of one external-inference run.
struct TransferStats {
  int64_t bytes_to_client = 0;
  int64_t bytes_to_server = 0;
  int64_t rows = 0;
  /// Peak bytes of client-side row materialisation (Table 3: the external
  /// Python environment's memory).
  int64_t client_peak_bytes = 0;
  /// Deterministic ODBC/Python cost model: per-row driver fetch + Python
  /// row-object construction that the C++ client cannot exhibit natively
  /// (DESIGN.md §2). Added to the approach's reported time.
  double modeled_overhead_seconds = 0;
};

/// Calibrated ODBC + Python per-row cost (driver fetch loop, tuple boxing).
inline constexpr double kOdbcPerRowSeconds = 2e-6;

/// \brief The move-data-out baseline (paper class "TF (Python)"):
///
/// 1. the engine runs `SELECT id, <input columns> FROM fact`,
/// 2. the result is serialised row-by-row through an ODBC-like wire format
///    over a real socketpair,
/// 3. a client thread deserialises into per-row records, re-packs them into
///    a dense tensor, runs tensorrt_lite on `device`,
/// 4. predictions stream back over the socket and are materialised as the
///    result (id, prediction).
///
/// All four costs the paper attributes to this approach are real here:
/// engine read, wire serialisation + transfer, client conversion, and the
/// inability to continue query processing inside the engine.
Result<exec::QueryResult> RunExternalInference(
    sql::QueryEngine* engine, const std::string& fact_table,
    const std::string& id_column, const std::vector<std::string>& input_columns,
    const nn::Model& model, const std::string& device,
    TransferStats* stats = nullptr);

}  // namespace indbml::integration

#endif  // INDBML_INTEGRATION_EXTERNAL_CLIENT_H_
