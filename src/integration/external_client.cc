#include "integration/external_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "mlruntime/runtime.h"

namespace indbml::integration {

namespace {

/// Buffered writer over a socket fd (ODBC-style network buffer).
class WireWriter {
 public:
  explicit WireWriter(int fd) : fd_(fd) { buffer_.reserve(kBufferSize); }

  bool Write(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (size > 0) {
      size_t space = kBufferSize - buffer_.size();
      size_t take = std::min(space, size);
      buffer_.insert(buffer_.end(), p, p + take);
      p += take;
      size -= take;
      if (buffer_.size() == kBufferSize && !Flush()) return false;
    }
    bytes_written_ += static_cast<int64_t>(p - static_cast<const uint8_t*>(data));
    return true;
  }

  bool Flush() {
    size_t offset = 0;
    while (offset < buffer_.size()) {
      ssize_t n = ::write(fd_, buffer_.data() + offset, buffer_.size() - offset);
      if (n <= 0) return false;
      offset += static_cast<size_t>(n);
    }
    buffer_.clear();
    return true;
  }

  int64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr size_t kBufferSize = 8192;
  int fd_;
  std::vector<uint8_t> buffer_;
  int64_t bytes_written_ = 0;
};

bool ReadFully(int fd, void* data, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(data);
  while (size > 0) {
    ssize_t n = ::read(fd, p, size);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

/// One deserialised client-side record (a Python row object).
struct ClientRow {
  int64_t id;
  std::vector<float> features;
};

}  // namespace

Result<exec::QueryResult> RunExternalInference(
    sql::QueryEngine* engine, const std::string& fact_table,
    const std::string& id_column, const std::vector<std::string>& input_columns,
    const nn::Model& model, const std::string& device, TransferStats* stats) {
  const int64_t in_width = static_cast<int64_t>(input_columns.size());
  if (in_width != model.input_width()) {
    return Status::InvalidArgument("input columns do not match the model");
  }

  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError("socketpair failed");
  }
  int server_fd = fds[0];
  int client_fd = fds[1];

  // ---- Client thread: the "Python" side. ----
  struct ClientResult {
    Status status = Status::OK();
    int64_t peak_bytes = 0;
    int64_t bytes_back = 0;
  };
  ClientResult client_result;
  const nn::Model* model_ptr = &model;
  // The "external process": one dedicated worker simulating the Python
  // client on the other end of the socket. WaitIdle() is the join.
  ThreadPool client(1);
  client.Submit([&client_result, client_fd, in_width, model_ptr, device]() {
    auto fail = [&](const std::string& msg) {
      client_result.status = Status::IOError(msg);
      ::close(client_fd);
    };
    // Fetch loop: cursor-style rows until the row-count terminator.
    std::vector<ClientRow> rows;
    for (;;) {
      int64_t id;
      if (!ReadFully(client_fd, &id, sizeof(id))) return fail("client read failed");
      if (id == -1) break;  // end of result set
      ClientRow row;
      row.id = id;
      row.features.resize(static_cast<size_t>(in_width));
      if (!ReadFully(client_fd, row.features.data(),
                     row.features.size() * sizeof(float))) {
        return fail("client read failed");
      }
      rows.push_back(std::move(row));
    }
    client_result.peak_bytes = static_cast<int64_t>(
        rows.size() * (sizeof(ClientRow) + static_cast<size_t>(in_width) * 4));

    // Repack the row objects into a dense tensor (np.asarray).
    const int64_t n = static_cast<int64_t>(rows.size());
    std::vector<float> dense(static_cast<size_t>(n * in_width));
    for (int64_t r = 0; r < n; ++r) {
      std::memcpy(&dense[static_cast<size_t>(r * in_width)],
                  rows[static_cast<size_t>(r)].features.data(),
                  static_cast<size_t>(in_width) * sizeof(float));
    }
    client_result.peak_bytes += static_cast<int64_t>(dense.size() * 4);

    auto session = mlruntime::Session::Create(*model_ptr, device);
    if (!session.ok()) {
      client_result.status = session.status();
      ::close(client_fd);
      return;
    }
    const int64_t out_dim = (*session)->output_dim();
    std::vector<float> predictions(static_cast<size_t>(n * out_dim));
    Status run = (*session)->Run(dense.data(), n, predictions.data());
    if (!run.ok()) {
      client_result.status = run;
      ::close(client_fd);
      return;
    }
    client_result.peak_bytes +=
        static_cast<int64_t>(predictions.size() * 4) + (*session)->MemoryBytes();

    // Stream (id, prediction...) back.
    WireWriter writer(client_fd);
    for (int64_t r = 0; r < n; ++r) {
      writer.Write(&rows[static_cast<size_t>(r)].id, sizeof(int64_t));
      writer.Write(&predictions[static_cast<size_t>(r * out_dim)],
                   static_cast<size_t>(out_dim) * sizeof(float));
      client_result.bytes_back +=
          static_cast<int64_t>(sizeof(int64_t) + static_cast<size_t>(out_dim) * 4);
    }
    int64_t terminator = -1;
    writer.Write(&terminator, sizeof(terminator));
    writer.Flush();
    ::close(client_fd);
  });

  // ---- Server side: run the query and ship the rows. ----
  auto cleanup_fail = [&](Status status) -> Status {
    ::close(server_fd);
    client.WaitIdle();
    return status;
  };

  std::string sql = "SELECT " + id_column;
  for (const std::string& c : input_columns) sql += ", " + c;
  sql += " FROM " + fact_table;
  auto query = engine->ExecuteQuery(sql);
  if (!query.ok()) return cleanup_fail(query.status());

  int64_t bytes_out = 0;
  {
    WireWriter writer(server_fd);
    for (const exec::DataChunk& chunk : query->chunks) {
      for (int64_t r = 0; r < chunk.size; ++r) {
        int64_t id = chunk.column(0).ints()[r];
        writer.Write(&id, sizeof(id));
        // Row-wise serialisation: gather the feature columns per tuple.
        for (int64_t c = 1; c <= in_width; ++c) {
          float v = chunk.column(c).floats()[r];
          writer.Write(&v, sizeof(v));
        }
        bytes_out += static_cast<int64_t>(sizeof(int64_t)) + in_width * 4;
      }
    }
    int64_t terminator = -1;
    writer.Write(&terminator, sizeof(terminator));
    if (!writer.Flush()) return cleanup_fail(Status::IOError("server write failed"));
  }

  // Collect the predictions coming back.
  exec::QueryResult result;
  result.names = {"id", "prediction"};
  result.types = {exec::DataType::kInt64, exec::DataType::kFloat};
  const int64_t out_dim = model.output_dim();
  if (out_dim != 1) {
    result.names.clear();
    result.types.clear();
    result.names.push_back("id");
    result.types.push_back(exec::DataType::kInt64);
    for (int64_t p = 0; p < out_dim; ++p) {
      result.names.push_back(StrFormat("prediction_%lld", static_cast<long long>(p)));
      result.types.push_back(exec::DataType::kFloat);
    }
  }
  exec::DataChunk chunk;
  chunk.Reset(result.types);
  int64_t bytes_in = 0;
  for (;;) {
    int64_t id;
    if (!ReadFully(server_fd, &id, sizeof(id))) {
      return cleanup_fail(Status::IOError("server read failed"));
    }
    if (id == -1) break;
    std::vector<float> preds(static_cast<size_t>(out_dim));
    if (!ReadFully(server_fd, preds.data(), preds.size() * sizeof(float))) {
      return cleanup_fail(Status::IOError("server read failed"));
    }
    bytes_in += static_cast<int64_t>(sizeof(int64_t) + preds.size() * 4);
    chunk.column(0).Append(exec::Value::Int64(id));
    for (int64_t p = 0; p < out_dim; ++p) {
      chunk.column(1 + p).Append(exec::Value::Float(preds[static_cast<size_t>(p)]));
    }
    ++chunk.size;
    if (chunk.size >= 1024) {
      result.num_rows += chunk.size;
      result.chunks.push_back(std::move(chunk));
      chunk = exec::DataChunk();
      chunk.Reset(result.types);
    }
  }
  if (chunk.size > 0) {
    result.num_rows += chunk.size;
    result.chunks.push_back(std::move(chunk));
  }
  ::close(server_fd);
  client.WaitIdle();
  if (!client_result.status.ok()) return client_result.status;

  if (stats != nullptr) {
    stats->bytes_to_client = bytes_out;
    stats->bytes_to_server = bytes_in;
    stats->rows = result.num_rows;
    stats->client_peak_bytes = client_result.peak_bytes;
    // Rows cross the driver boundary twice (fetch + result upload).
    stats->modeled_overhead_seconds =
        2.0 * static_cast<double>(result.num_rows) * kOdbcPerRowSeconds;
  }
  return result;
}

}  // namespace indbml::integration
