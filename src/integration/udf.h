#ifndef INDBML_INTEGRATION_UDF_H_
#define INDBML_INTEGRATION_UDF_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "nn/model.h"

namespace indbml::integration {

/// A vectorized user-defined function: called once per vector (not once per
/// tuple — the engine's optimised UDF protocol, paper §6.1 citing [21]),
/// reading `arg_columns` of the input chunk and filling `outputs`.
using VectorizedUdf = std::function<Status(const exec::DataChunk& input,
                                           const std::vector<int>& arg_columns,
                                           std::vector<exec::Vector>* outputs)>;

/// \brief Engine operator invoking a vectorized UDF and appending its
/// output columns to the pass-through child columns.
class UdfOperator final : public exec::Operator {
 public:
  UdfOperator(exec::OperatorPtr child, VectorizedUdf udf,
              std::vector<int> arg_columns,
              std::vector<std::string> output_names,
              std::vector<exec::DataType> output_types);

  const std::vector<exec::DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(exec::ExecContext* ctx) override { return child_->Open(ctx); }
  Status Next(exec::ExecContext* ctx, exec::DataChunk* out, bool* eof) override;
  void Close(exec::ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(exec::ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  exec::OperatorPtr child_;
  VectorizedUdf udf_;
  std::vector<int> arg_columns_;
  std::vector<exec::DataType> types_;
  std::vector<std::string> names_;
  size_t num_outputs_;
};

/// Statistics of the interpreted-runtime UDF (observability + tests).
///
/// `modeled_overhead_seconds` is the deterministic interpreter cost model
/// (same idea as the simulated GPU, DESIGN.md §2): CPython-calibrated
/// charges for UDF invocation and per-value boxing/unboxing that the C++
/// emulation cannot exhibit natively. The benchmark harness adds it to the
/// UDF approach's reported time.
struct InterpreterStats {
  int64_t calls = 0;
  int64_t values_boxed = 0;
  int64_t gil_acquisitions = 0;
  double modeled_overhead_seconds = 0;
};

/// CPython-calibrated interpreter cost constants.
inline constexpr double kInterpreterCallOverheadSeconds = 20e-6;
inline constexpr double kInterpreterPerValueSeconds = 150e-9;

/// \brief Builds the Python-UDF baseline: an inference UDF executing inside
/// an *interpreted* runtime.
///
/// Structurally models what `@udf def predict(rows): return model(rows)`
/// costs in CPython: a global interpreter lock serialises calls, every
/// input value is boxed into a heap-allocated tagged object, rows become
/// lists of boxed values, the list-of-rows is converted to a dense tensor
/// (np.asarray), the model runs via tensorrt_lite on the CPU, and the
/// predictions are boxed again before being unboxed into the result vector.
/// Data never leaves the server process (unlike the external client).
Result<VectorizedUdf> MakeInterpretedInferenceUdf(
    std::shared_ptr<const std::vector<uint8_t>> model_bytes, int64_t input_width,
    int64_t output_dim, std::shared_ptr<InterpreterStats> stats = nullptr);

}  // namespace indbml::integration

#endif  // INDBML_INTEGRATION_UDF_H_
