#include "integration/capi_operator.h"

#include "common/config.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/gather.h"
#include "exec/profile.h"
#include "mlruntime/trt_c_api.h"

namespace indbml::integration {

CApiInferenceOperator::CApiInferenceOperator(
    exec::OperatorPtr child, std::shared_ptr<const std::vector<uint8_t>> model_bytes,
    std::string device, std::vector<int> input_columns,
    std::vector<std::string> prediction_names)
    : child_(std::move(child)),
      model_bytes_(std::move(model_bytes)),
      device_(std::move(device)),
      input_columns_(std::move(input_columns)) {
  types_ = child_->output_types();
  names_ = child_->output_names();
  for (auto& name : prediction_names) {
    types_.push_back(exec::DataType::kFloat);
    names_.push_back(std::move(name));
  }
}

CApiInferenceOperator::~CApiInferenceOperator() {
  if (session_ != nullptr) trt_session_destroy(session_);
}

Status CApiInferenceOperator::Open(exec::ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(child_->Open(ctx));
  if (session_ == nullptr) {
    trt_status status = trt_session_create_from_buffer(
        model_bytes_->data(), model_bytes_->size(), device_.c_str(), &session_);
    if (status != TRT_OK) {
      return Status::ExecutionError(std::string("runtime session creation failed: ") +
                                    trt_last_error());
    }
  }
  if (trt_session_input_width(session_) !=
      static_cast<int64_t>(input_columns_.size())) {
    return Status::InvalidArgument("input column count does not match the model");
  }
  return Status::OK();
}

Status CApiInferenceOperator::Next(exec::ExecContext* ctx, exec::DataChunk* out,
                                   bool* eof) {
  exec::DataChunk in;
  in.Reset(child_->output_types());
  INDBML_RETURN_NOT_OK(child_->Next(ctx, &in, eof));
  const int64_t n = in.size;
  if (n == 0) return Status::OK();
  const int64_t in_width = static_cast<int64_t>(input_columns_.size());
  const int64_t out_dim = trt_session_output_dim(session_);

  // Columnar -> row-major conversion (strided writes; §6.1) — the layout
  // cost the paper attributes to the C-API approach, timed separately.
  Stopwatch phase_watch;
  row_major_input_.resize(static_cast<size_t>(n * in_width));
  for (int64_t c = 0; c < in_width; ++c) {
    const exec::Vector& col = in.column(input_columns_[static_cast<size_t>(c)]);
    // Typed strided gather through the selection vector: column c of the
    // row-major matrix lives at base + c with stride in_width.
    exec::GatherToFloatStrided(col, row_major_input_.data() + c, in_width);
  }

  int64_t convert_nanos = phase_watch.ElapsedNanos();

  row_major_output_.resize(static_cast<size_t>(n * out_dim));
  int64_t run_nanos;
  {
    trace::Span span("capi.run");
    phase_watch.Restart();
    if (trt_session_run(session_, row_major_input_.data(), n,
                        row_major_output_.data()) != TRT_OK) {
      return Status::ExecutionError(std::string("runtime inference failed: ") +
                                    trt_last_error());
    }
    run_nanos = phase_watch.ElapsedNanos();
  }

  // Pass-through columns, then row-major -> columnar results.
  const int64_t child_width = in.num_columns();
  for (int64_t c = 0; c < child_width; ++c) {
    out->column(c) = std::move(in.column(c));
  }
  phase_watch.Restart();
  for (int64_t p = 0; p < out_dim; ++p) {
    exec::Vector& col = out->column(child_width + p);
    col.Resize(n);
    float* dst = col.floats();
    for (int64_t r = 0; r < n; ++r) {
      dst[r] = row_major_output_[static_cast<size_t>(r * out_dim + p)];
    }
  }
  convert_nanos += phase_watch.ElapsedNanos();
  out->size = n;

  // Resolved once: registry lookups take a lock, metric pointers are stable.
  static metrics::Counter* rows_metric =
      metrics::Registry::Global().counter("capi.rows");
  static metrics::Histogram* convert_metric =
      metrics::Registry::Global().histogram("capi.convert_micros");
  static metrics::Histogram* run_metric =
      metrics::Registry::Global().histogram("capi.run_micros");
  rows_metric->Increment(n);
  convert_metric->Record(convert_nanos / 1000);
  run_metric->Record(run_nanos / 1000);
  if (ctx->active_stats != nullptr) {
    ctx->active_stats->AddPhase("convert", convert_nanos);
    ctx->active_stats->AddPhase("run", run_nanos);
  }
  return Status::OK();
}

void CApiInferenceOperator::Close(exec::ExecContext* ctx) { child_->Close(ctx); }

int64_t CApiInferenceOperator::SessionMemoryBytes() const {
  return session_ != nullptr ? trt_session_memory_bytes(session_) : 0;
}

}  // namespace indbml::integration
