#include "integration/udf.h"

#include <memory>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/gather.h"
#include "exec/profile.h"
#include "mlruntime/trt_c_api.h"

namespace indbml::integration {

UdfOperator::UdfOperator(exec::OperatorPtr child, VectorizedUdf udf,
                         std::vector<int> arg_columns,
                         std::vector<std::string> output_names,
                         std::vector<exec::DataType> output_types)
    : child_(std::move(child)),
      udf_(std::move(udf)),
      arg_columns_(std::move(arg_columns)),
      num_outputs_(output_names.size()) {
  types_ = child_->output_types();
  names_ = child_->output_names();
  for (size_t i = 0; i < output_names.size(); ++i) {
    types_.push_back(output_types[i]);
    names_.push_back(output_names[i]);
  }
}

Status UdfOperator::Next(exec::ExecContext* ctx, exec::DataChunk* out, bool* eof) {
  exec::DataChunk in;
  in.Reset(child_->output_types());
  INDBML_RETURN_NOT_OK(child_->Next(ctx, &in, eof));
  if (in.size == 0) return Status::OK();

  std::vector<exec::Vector> outputs;
  {
    trace::Span span("udf.call");
    Stopwatch udf_watch;
    INDBML_RETURN_NOT_OK(udf_(in, arg_columns_, &outputs));
    int64_t nanos = udf_watch.ElapsedNanos();
    static metrics::Counter* calls_metric =
        metrics::Registry::Global().counter("udf.calls");
    static metrics::Histogram* call_metric =
        metrics::Registry::Global().histogram("udf.call_micros");
    calls_metric->Increment();
    call_metric->Record(nanos / 1000);
    if (ctx->active_stats != nullptr) ctx->active_stats->AddPhase("udf", nanos);
  }
  if (outputs.size() != num_outputs_) {
    return Status::ExecutionError("UDF produced the wrong number of columns");
  }
  const int64_t child_width = in.num_columns();
  for (int64_t c = 0; c < child_width; ++c) {
    out->column(c) = std::move(in.column(c));
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].size() != in.size) {
      return Status::ExecutionError("UDF output cardinality mismatch");
    }
    out->column(child_width + static_cast<int64_t>(i)) = std::move(outputs[i]);
  }
  out->size = in.size;
  return Status::OK();
}

namespace {

/// A CPython-style boxed value. Lists own their elements; every number the
/// UDF touches becomes one heap allocation, like PyObject boxing.
struct PyValue {
  enum class Tag { kFloat, kList };
  Tag tag = Tag::kFloat;
  double f = 0;
  std::vector<std::unique_ptr<PyValue>> list;

  static std::unique_ptr<PyValue> Float(double v) {
    auto out = std::make_unique<PyValue>();
    out->tag = Tag::kFloat;
    out->f = v;
    return out;
  }
  static std::unique_ptr<PyValue> List() {
    auto out = std::make_unique<PyValue>();
    out->tag = Tag::kList;
    return out;
  }
};

/// The interpreter's global lock: concurrent UDF calls from parallel
/// partitions serialise here, as they would on the CPython GIL.
Mutex& GlobalInterpreterLock() {
  static Mutex* gil = new Mutex();
  return *gil;
}

/// Per-UDF interpreter state (the loaded model, created on first call like
/// a module-level `model = load_model(path)`).
struct InterpreterState {
  std::shared_ptr<const std::vector<uint8_t>> model_bytes;
  trt_session* session = nullptr;
  std::shared_ptr<InterpreterStats> stats;

  ~InterpreterState() {
    if (session != nullptr) trt_session_destroy(session);
  }
};

}  // namespace

Result<VectorizedUdf> MakeInterpretedInferenceUdf(
    std::shared_ptr<const std::vector<uint8_t>> model_bytes, int64_t input_width,
    int64_t output_dim, std::shared_ptr<InterpreterStats> stats) {
  if (model_bytes == nullptr || model_bytes->empty()) {
    return Status::InvalidArgument("empty model");
  }
  auto state = std::make_shared<InterpreterState>();
  state->model_bytes = std::move(model_bytes);
  state->stats = std::move(stats);

  VectorizedUdf udf = [state, input_width, output_dim](
                          const exec::DataChunk& input,
                          const std::vector<int>& arg_columns,
                          std::vector<exec::Vector>* outputs) -> Status {
    if (static_cast<int64_t>(arg_columns.size()) != input_width) {
      return Status::InvalidArgument("UDF argument count mismatch");
    }
    // Enter the interpreter.
    MutexLock gil(GlobalInterpreterLock());
    if (state->stats) {
      ++state->stats->calls;
      ++state->stats->gil_acquisitions;
      state->stats->modeled_overhead_seconds += kInterpreterCallOverheadSeconds;
    }
    if (state->session == nullptr) {
      // load_model(...) on first call.
      if (trt_session_create_from_buffer(state->model_bytes->data(),
                                         state->model_bytes->size(), "cpu",
                                         &state->session) != TRT_OK) {
        return Status::ExecutionError(std::string("UDF model load failed: ") +
                                      trt_last_error());
      }
    }

    static metrics::Counter* boxed_metric =
        metrics::Registry::Global().counter("udf.values_boxed");
    static metrics::Histogram* marshal_metric =
        metrics::Registry::Global().histogram("udf.marshal_micros");
    static metrics::Histogram* run_metric =
        metrics::Registry::Global().histogram("udf.run_micros");
    Stopwatch phase_watch;

    const int64_t n = input.size;
    // Box every input value: rows = [[v00, v01, ...], ...]. The per-value
    // PyValue allocation is the interpreter tax this approach measures and
    // stays; the *reads* gather through the selection vector with hoisted
    // typed base pointers instead of boxing a Value per cell first.
    std::vector<exec::TypedDoubleReader> readers;
    readers.reserve(arg_columns.size());
    for (int col : arg_columns) {
      readers.emplace_back(input.column(col));
    }
    auto rows = PyValue::List();
    rows->list.reserve(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      auto row = PyValue::List();
      row->list.reserve(arg_columns.size());
      for (const exec::TypedDoubleReader& reader : readers) {
        row->list.push_back(PyValue::Float(reader.DoubleAt(r)));
      }
      rows->list.push_back(std::move(row));
    }
    if (state->stats) {
      int64_t boxed = n * static_cast<int64_t>(arg_columns.size());
      state->stats->values_boxed += boxed;
      state->stats->modeled_overhead_seconds +=
          static_cast<double>(boxed) * kInterpreterPerValueSeconds;
    }

    // np.asarray(rows, dtype=float32): unbox into a dense row-major buffer.
    std::vector<float> dense(static_cast<size_t>(n * input_width));
    for (int64_t r = 0; r < n; ++r) {
      const PyValue& row = *rows->list[static_cast<size_t>(r)];
      for (int64_t c = 0; c < input_width; ++c) {
        dense[static_cast<size_t>(r * input_width + c)] =
            static_cast<float>(row.list[static_cast<size_t>(c)]->f);
      }
    }

    marshal_metric->Record(phase_watch.ElapsedNanos() / 1000);
    boxed_metric->Increment(n * input_width);

    // model.predict(...) — the runtime itself is native (like TF), CPU only
    // inside a UDF.
    std::vector<float> predictions(static_cast<size_t>(n * output_dim));
    phase_watch.Restart();
    // Inference runs while holding the GIL on purpose: serialised interpreter
    // execution is exactly the UDF tax the paper's Table-2 experiment
    // measures (a real CPython UDF cannot release the GIL around predict()).
    if (trt_session_run(state->session, dense.data(), n,  // NOLINT(indbml-lock-scope)
                        predictions.data()) != TRT_OK) {
      return Status::ExecutionError(std::string("UDF inference failed: ") +
                                    trt_last_error());
    }
    run_metric->Record(phase_watch.ElapsedNanos() / 1000);
    phase_watch.Restart();

    // Box the predictions (the UDF returns Python lists)...
    auto result_rows = PyValue::List();
    result_rows->list.reserve(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      auto row = PyValue::List();
      for (int64_t c = 0; c < output_dim; ++c) {
        row->list.push_back(
            PyValue::Float(predictions[static_cast<size_t>(r * output_dim + c)]));
      }
      result_rows->list.push_back(std::move(row));
    }
    if (state->stats) {
      state->stats->values_boxed += n * output_dim;
      state->stats->modeled_overhead_seconds +=
          static_cast<double>(n * output_dim) * kInterpreterPerValueSeconds;
    }

    // ... which the engine unboxes back into vectors.
    outputs->clear();
    for (int64_t c = 0; c < output_dim; ++c) {
      exec::Vector col(exec::DataType::kFloat);
      col.Resize(n);
      float* dst = col.floats();
      for (int64_t r = 0; r < n; ++r) {
        dst[r] = static_cast<float>(
            result_rows->list[static_cast<size_t>(r)]->list[static_cast<size_t>(c)]->f);
      }
      outputs->push_back(std::move(col));
    }
    marshal_metric->Record(phase_watch.ElapsedNanos() / 1000);
    boxed_metric->Increment(n * output_dim);
    return Status::OK();
  };
  return udf;
}

}  // namespace indbml::integration
