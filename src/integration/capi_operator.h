#ifndef INDBML_INTEGRATION_CAPI_OPERATOR_H_
#define INDBML_INTEGRATION_CAPI_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "mlruntime/trt_c_api.h"

namespace indbml::integration {

/// \brief Raven-like in-engine inference through the external runtime's
/// C API (paper class 2, evaluated as TF_CAPI_CPU / TF_CAPI_GPU).
///
/// Each partition instance owns its own runtime session (created from the
/// shared serialized model). Per chunk it converts the engine's columnar
/// vectors into the runtime's row-major input matrix, calls
/// `trt_session_run`, and scatters the row-major result back into columns —
/// the layout-conversion cost the paper attributes to this approach (§6.1).
class CApiInferenceOperator final : public exec::Operator {
 public:
  /// `model_bytes` is the serialized model shared by all partitions;
  /// `device` is the runtime device name ("cpu"/"gpu").
  CApiInferenceOperator(exec::OperatorPtr child,
                        std::shared_ptr<const std::vector<uint8_t>> model_bytes,
                        std::string device, std::vector<int> input_columns,
                        std::vector<std::string> prediction_names);
  ~CApiInferenceOperator() override;

  const std::vector<exec::DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(exec::ExecContext* ctx) override;
  Status Next(exec::ExecContext* ctx, exec::DataChunk* out, bool* eof) override;
  void Close(exec::ExecContext* ctx) override;
  Status Rewind(exec::ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

  /// Runtime memory of this instance's session (0 before Open).
  int64_t SessionMemoryBytes() const;

 private:
  exec::OperatorPtr child_;
  std::shared_ptr<const std::vector<uint8_t>> model_bytes_;
  std::string device_;
  std::vector<int> input_columns_;
  std::vector<exec::DataType> types_;
  std::vector<std::string> names_;

  ::trt_session* session_ = nullptr;
  std::vector<float> row_major_input_;
  std::vector<float> row_major_output_;
};

}  // namespace indbml::integration

#endif  // INDBML_INTEGRATION_CAPI_OPERATOR_H_
