#ifndef INDBML_BENCHLIB_APPROACHES_H_
#define INDBML_BENCHLIB_APPROACHES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "device/device.h"
#include "nn/model.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {

/// The inference approaches of the paper's evaluation (§6.1, Figures 8/9):
/// the native ModelJoin operator (CPU/GPU), the ML runtime integrated over
/// its C API (CPU/GPU), the external move-data-out baseline (CPU/GPU —
/// "TF (Python)"), the in-engine interpreted UDF, and ML-To-SQL.
enum class Approach {
  kModelJoinCpu,
  kModelJoinGpu,
  kCApiCpu,
  kCApiGpu,
  kExternalCpu,
  kExternalGpu,
  kUdf,
  kMlToSql,
};

/// Paper-style series label, e.g. "ModelJoin_CPU", "TF_CAPI_GPU", "TF_CPU",
/// "UDF", "ML-To-SQL".
const char* ApproachName(Approach approach);

/// All eight approaches in the paper's legend order.
std::vector<Approach> AllApproaches();

/// True if the approach offloads compute to the simulated GPU (its wall
/// time needs the device-time adjustment).
bool IsGpuApproach(Approach approach);

/// Everything needed to run one approach against one (fact table, model)
/// pair. Create via PrepareApproachContext.
struct ApproachContext {
  sql::QueryEngine* engine = nullptr;
  const nn::Model* model = nullptr;
  std::string model_name;   ///< registered meta name
  std::string model_table;  ///< deployed relational representation
  std::string fact_table;
  std::string id_column = "id";
  std::vector<std::string> input_columns;
  std::shared_ptr<const std::vector<uint8_t>> model_bytes;  ///< serialized
  device::Device* gpu = nullptr;  ///< the shared simulated GPU
};

/// Deploys the model (relational table + registry + serialized bytes) into
/// the engine and wires the native ModelJoin to the shared devices.
Result<ApproachContext> PrepareApproachContext(
    sql::QueryEngine* engine, const nn::Model* model, const std::string& model_name,
    const std::string& fact_table, const std::vector<std::string>& input_columns);

/// Outcome of one timed run.
struct RunMeasurement {
  double wall_seconds = 0;
  /// Wall time with the simulated GPU's host-emulation time replaced by its
  /// modeled device time (== wall_seconds for CPU approaches); the number
  /// the figures report.
  double adjusted_seconds = 0;
  int64_t rows = 0;
  /// Sum of all prediction values — must agree across approaches.
  double prediction_checksum = 0;
  /// Peak tracked memory during the run minus the baseline before it.
  int64_t peak_delta_bytes = 0;
  device::DeviceStats gpu_stats;
};

/// Runs one approach end-to-end (including result materialisation) and
/// measures it.
Result<RunMeasurement> RunApproach(Approach approach, const ApproachContext& context);

}  // namespace indbml::benchlib

#endif  // INDBML_BENCHLIB_APPROACHES_H_
