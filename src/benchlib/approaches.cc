#include "benchlib/approaches.h"

#include <algorithm>
#include <cstring>

#include "common/memory_tracker.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "integration/capi_operator.h"
#include "integration/external_client.h"
#include "integration/udf.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model_meta.h"

namespace indbml::benchlib {

const char* ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kModelJoinCpu:
      return "ModelJoin_CPU";
    case Approach::kModelJoinGpu:
      return "ModelJoin_GPU";
    case Approach::kCApiCpu:
      return "TF_CAPI_CPU";
    case Approach::kCApiGpu:
      return "TF_CAPI_GPU";
    case Approach::kExternalCpu:
      return "TF_CPU";
    case Approach::kExternalGpu:
      return "TF_GPU";
    case Approach::kUdf:
      return "UDF";
    case Approach::kMlToSql:
      return "ML-To-SQL";
  }
  return "?";
}

std::vector<Approach> AllApproaches() {
  return {Approach::kModelJoinCpu, Approach::kModelJoinGpu, Approach::kCApiCpu,
          Approach::kCApiGpu,      Approach::kExternalCpu,  Approach::kExternalGpu,
          Approach::kUdf,          Approach::kMlToSql};
}

bool IsGpuApproach(Approach approach) {
  return approach == Approach::kModelJoinGpu || approach == Approach::kCApiGpu ||
         approach == Approach::kExternalGpu;
}

Result<ApproachContext> PrepareApproachContext(
    sql::QueryEngine* engine, const nn::Model* model, const std::string& model_name,
    const std::string& fact_table, const std::vector<std::string>& input_columns) {
  ApproachContext context;
  context.engine = engine;
  context.model = model;
  context.model_name = model_name;
  context.model_table = model_name + "_table";
  context.fact_table = fact_table;
  context.input_columns = input_columns;

  mltosql::MlToSql framework(model, context.model_table);
  INDBML_RETURN_NOT_OK(framework.Deploy(engine));
  engine->models()->Register(nn::MetaOf(*model, model_name));

  INDBML_ASSIGN_OR_RETURN(auto bytes, model->SaveToBytes());
  context.model_bytes =
      std::make_shared<const std::vector<uint8_t>>(std::move(bytes));

  modeljoin::RegisterNativeModelJoin(engine);
  context.gpu = modeljoin::DefaultDevice("gpu");
  return context;
}

namespace {

std::vector<std::string> PredictionNames(int64_t out_dim) {
  if (out_dim == 1) return {"prediction"};
  std::vector<std::string> names;
  for (int64_t i = 0; i < out_dim; ++i) {
    names.push_back(StrFormat("prediction_%lld", static_cast<long long>(i)));
  }
  return names;
}

/// Sums all prediction columns of a result.
Result<double> PredictionChecksum(const exec::QueryResult& result) {
  double sum = 0;
  bool found = false;
  for (size_t c = 0; c < result.names.size(); ++c) {
    if (result.names[c].rfind("prediction", 0) != 0) continue;
    found = true;
    for (const exec::DataChunk& chunk : result.chunks) {
      const exec::Vector& col = chunk.column(static_cast<int64_t>(c));
      const float* data = col.floats();
      for (int64_t r = 0; r < col.size(); ++r) sum += data[r];
    }
  }
  if (!found) return Status::ExecutionError("result has no prediction column");
  return sum;
}

/// Builds and runs a partitioned scan + wrapper-operator plan (the C-API and
/// UDF approaches, which are engine operators but not SQL-reachable).
Result<exec::QueryResult> RunOperatorPlan(
    const ApproachContext& context,
    const std::function<Result<exec::OperatorPtr>(exec::OperatorPtr child, int)>&
        wrap) {
  INDBML_ASSIGN_OR_RETURN(storage::TablePtr fact,
                          context.engine->catalog()->GetTable(context.fact_table));
  std::vector<int> scan_columns;
  INDBML_ASSIGN_OR_RETURN(int id_col, fact->ColumnIndex(context.id_column));
  scan_columns.push_back(id_col);
  for (const std::string& name : context.input_columns) {
    INDBML_ASSIGN_OR_RETURN(int col, fact->ColumnIndex(name));
    scan_columns.push_back(col);
  }
  const auto& options = context.engine->options();
  int partitions = options.parallel ? options.partitions : 1;
  auto ranges = fact->MakePartitions(partitions);

  exec::OperatorFactory factory =
      [&](int partition) -> Result<exec::OperatorPtr> {
    auto scan = std::make_unique<exec::TableScanOperator>(
        fact, ranges[static_cast<size_t>(partition)], scan_columns,
        std::vector<exec::ScanPredicate>{});
    return wrap(std::move(scan), partition);
  };
  ThreadPool* pool = partitions > 1 ? context.engine->pool() : nullptr;
  return exec::ExecuteParallel(factory, partitions, context.engine->catalog(), pool);
}

Result<exec::QueryResult> Execute(Approach approach, const ApproachContext& context,
                                  int64_t* extra_peak_bytes,
                                  double* modeled_overhead_seconds) {
  const int64_t out_dim = context.model->output_dim();
  const int64_t in_width = static_cast<int64_t>(context.input_columns.size());
  switch (approach) {
    case Approach::kModelJoinCpu:
    case Approach::kModelJoinGpu: {
      std::string sql = "SELECT " + context.id_column;
      for (const std::string& p : PredictionNames(out_dim)) sql += ", " + p;
      sql += " FROM " + context.fact_table + " MODEL JOIN " + context.model_table +
             " USING MODEL '" + context.model_name + "' DEVICE '" +
             (approach == Approach::kModelJoinGpu ? "gpu" : "cpu") + "' PREDICT (" +
             Join(context.input_columns, ", ") + ")";
      return context.engine->ExecuteQuery(sql);
    }
    case Approach::kCApiCpu:
    case Approach::kCApiGpu: {
      std::string device = approach == Approach::kCApiGpu ? "gpu" : "cpu";
      std::vector<int> input_idx;
      for (int64_t i = 0; i < in_width; ++i) {
        input_idx.push_back(static_cast<int>(1 + i));  // after the id column
      }
      return RunOperatorPlan(
          context, [&](exec::OperatorPtr child, int) -> Result<exec::OperatorPtr> {
            return exec::OperatorPtr(
                std::make_unique<integration::CApiInferenceOperator>(
                    std::move(child), context.model_bytes, device, input_idx,
                    PredictionNames(out_dim)));
          });
    }
    case Approach::kExternalCpu:
    case Approach::kExternalGpu: {
      std::string device = approach == Approach::kExternalGpu ? "gpu" : "cpu";
      integration::TransferStats stats;
      auto result = integration::RunExternalInference(
          context.engine, context.fact_table, context.id_column,
          context.input_columns, *context.model, device, &stats);
      // Client-side ("Python environment") row materialisation counts
      // towards this approach's footprint (paper §6.2.2 measures the peak
      // memory of the Python process for TF(Python)).
      *extra_peak_bytes = stats.client_peak_bytes;
      *modeled_overhead_seconds = stats.modeled_overhead_seconds;
      return result;
    }
    case Approach::kUdf: {
      auto stats = std::make_shared<integration::InterpreterStats>();
      INDBML_ASSIGN_OR_RETURN(
          auto udf, integration::MakeInterpretedInferenceUdf(
                        context.model_bytes, in_width, out_dim, stats));
      std::vector<int> input_idx;
      for (int64_t i = 0; i < in_width; ++i) {
        input_idx.push_back(static_cast<int>(1 + i));
      }
      std::vector<exec::DataType> out_types(static_cast<size_t>(out_dim),
                                            exec::DataType::kFloat);
      auto result = RunOperatorPlan(
          context, [&](exec::OperatorPtr child, int) -> Result<exec::OperatorPtr> {
            return exec::OperatorPtr(std::make_unique<integration::UdfOperator>(
                std::move(child), udf, input_idx, PredictionNames(out_dim),
                out_types));
          });
      *modeled_overhead_seconds = stats->modeled_overhead_seconds;
      return result;
    }
    case Approach::kMlToSql: {
      mltosql::MlToSql framework(context.model, context.model_table);
      mltosql::FactTableInfo info;
      info.table = context.fact_table;
      info.id_column = context.id_column;
      info.input_columns = context.input_columns;
      INDBML_ASSIGN_OR_RETURN(std::string sql, framework.GenerateInferenceSql(info));
      return context.engine->ExecuteQuery(sql);
    }
  }
  return Status::Internal("unhandled approach");
}

}  // namespace

Result<RunMeasurement> RunApproach(Approach approach,
                                   const ApproachContext& context) {
  MemoryTracker& tracker = MemoryTracker::Global();
  int64_t baseline = tracker.current_bytes();
  tracker.ResetPeak();
  if (context.gpu != nullptr) context.gpu->ResetStats();

  Stopwatch watch;
  int64_t extra_peak_bytes = 0;
  double modeled_overhead_seconds = 0;
  INDBML_ASSIGN_OR_RETURN(auto result, Execute(approach, context, &extra_peak_bytes,
                                               &modeled_overhead_seconds));
  double wall = watch.ElapsedSeconds();

  RunMeasurement m;
  m.wall_seconds = wall;
  m.rows = result.num_rows;
  INDBML_ASSIGN_OR_RETURN(m.prediction_checksum, PredictionChecksum(result));
  m.peak_delta_bytes = tracker.peak_bytes() - baseline + extra_peak_bytes;
  if (context.gpu != nullptr) m.gpu_stats = context.gpu->stats();
  if (IsGpuApproach(approach)) {
    // Replace the host time spent emulating device work with the modeled
    // device time. The run can never finish faster than the (serialised)
    // device needs, so the modeled device time is a lower bound.
    m.adjusted_seconds =
        std::max(wall - m.gpu_stats.real_seconds + m.gpu_stats.modeled_seconds,
                 m.gpu_stats.modeled_seconds);
  } else {
    m.adjusted_seconds = wall;
  }
  // Interpreter/ODBC cost model for the Python-shaped baselines.
  m.adjusted_seconds += modeled_overhead_seconds;
  return m;
}

}  // namespace indbml::benchlib
