#include "benchlib/report.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace indbml::benchlib {

ReportTable::ReportTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  const char* env = std::getenv("BENCH_METRICS");
  metrics_enabled_ = env != nullptr && env[0] != '\0' && std::string(env) != "0";
  if (metrics_enabled_) {
    columns_.push_back("metrics");
    metrics_base_ = metrics::Registry::Global().FlatValues();
  }
}

ReportTable::~ReportTable() {
  if (!finished_) Finish();
}

void ReportTable::AddRow(std::vector<std::string> values) {
  if (metrics_enabled_) {
    // Append the metric deltas accumulated since the previous row
    // (semicolon-separated to keep the CSV single-celled).
    std::map<std::string, int64_t> now = metrics::Registry::Global().FlatValues();
    std::string cell;
    for (const auto& [name, value] : now) {
      auto base = metrics_base_.find(name);
      int64_t delta = value - (base != metrics_base_.end() ? base->second : 0);
      if (delta == 0) continue;
      if (!cell.empty()) cell += ";";
      cell += StrFormat("%s=%lld", name.c_str(), static_cast<long long>(delta));
    }
    metrics_base_ = std::move(now);
    values.push_back(std::move(cell));
  }
  INDBML_CHECK(values.size() == columns_.size());
  rows_.push_back(std::move(values));
}

void ReportTable::Finish() {
  if (finished_) return;
  finished_ = true;

  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::printf("\n== %s ==\n", name_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  const char* dir = std::getenv("RESULTS_DIR");
  std::string results_dir = dir != nullptr ? dir : "results";
  ::mkdir(results_dir.c_str(), 0755);
  std::string path = results_dir + "/" + name_ + ".csv";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    INDBML_LOG(Warning) << "cannot write " << path;
    return;
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::fprintf(f, "%s%s", c ? "," : "", columns_[c].c_str());
  }
  std::fprintf(f, "\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%s%s", c ? "," : "", row[c].c_str());
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("(csv: %s)\n", path.c_str());
}

std::string FormatSeconds(double seconds) { return StrFormat("%.4g", seconds); }

ScaleConfig ScaleConfig::FromEnv() {
  ScaleConfig config;
  const char* scale = std::getenv("REPRO_SCALE");
  config.paper_scale = scale != nullptr && std::string(scale) == "paper";
  if (config.paper_scale) {
    // §6.1: widths {32,128,512} x depths {2,4,8}, fact sizes up to ~500K.
    config.dense_widths = {32, 128, 512};
    config.dense_depths = {2, 4, 8};
    config.lstm_widths = {32, 128, 512};
    config.fact_sizes = {50000, 100000, 200000, 300000, 400000, 500000};
    config.memory_fact_size = 100000;
    config.mltosql_row_budget = 0;
  } else {
    config.dense_widths = {32, 128};
    config.dense_depths = {2, 4};
    config.lstm_widths = {16, 64};
    config.fact_sizes = {1000, 4000, 16000};
    config.memory_fact_size = 10000;
    config.mltosql_row_budget = 4000000;
  }
  return config;
}

}  // namespace indbml::benchlib
