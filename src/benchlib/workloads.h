#ifndef INDBML_BENCHLIB_WORKLOADS_H_
#define INDBML_BENCHLIB_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace indbml::benchlib {

/// \file Workload generators of the paper's evaluation (§6.1).
///
/// Dense experiment: the Iris dataset "replicated to mimic varying fact
/// table sizes" — four feature columns predicting a class attribute. This
/// repo embeds a deterministic Iris replica sampled from the published
/// per-class feature distributions (the original measurements are not
/// bundled; prediction *runtime* is independent of the values, §6.1, and
/// the class structure is preserved so the examples train meaningfully).
///
/// LSTM experiment: "a time series based on a sinus function" with 3 time
/// steps per forecast, realised either directly as a wide fact table or as
/// a raw series table turned wide by self-joins (§4 preamble).

/// Number of rows of the base (unreplicated) Iris replica.
inline constexpr int64_t kIrisBaseRows = 150;

/// Builds `fact(id BIGINT, sepal_length, sepal_width, petal_length,
/// petal_width FLOAT, class BIGINT)` with `num_rows` rows (the 150-row base
/// replica tiled). The table is sorted by and partitioned on `id`.
storage::TablePtr MakeIrisTable(const std::string& name, int64_t num_rows);

/// Builds `fact(id BIGINT, x0..x{timesteps-1} FLOAT)` where column x_t of
/// row i is sin(0.1 * (i + t)) — the already-widened time-series input.
storage::TablePtr MakeSinusTable(const std::string& name, int64_t num_rows,
                                 int64_t timesteps);

/// Builds the *raw* series `series(t BIGINT, value FLOAT)` with
/// value = sin(0.1 * t).
storage::TablePtr MakeRawSinusSeries(const std::string& name, int64_t num_points);

/// SQL that widens a raw series into `timesteps` columns by self-joining
/// the series table `timesteps - 1` times on consecutive positions
/// (paper §4: "self-joining the table n-1 times ... with a join predicate
/// that lets tuples match with their predecessor in the series").
std::string BuildSelfJoinSql(const std::string& series_table, int64_t timesteps);

/// Normalised-feature matrix of the Iris replica (row-major, 4 columns) for
/// feeding the in-memory baselines; `classes` receives 0/1/2 labels.
void IrisFeatures(int64_t num_rows, std::vector<float>* features,
                  std::vector<int64_t>* classes);

}  // namespace indbml::benchlib

#endif  // INDBML_BENCHLIB_WORKLOADS_H_
