#ifndef INDBML_BENCHLIB_REPORT_H_
#define INDBML_BENCHLIB_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace indbml::benchlib {

/// \brief Fixed-width console table + CSV writer for the figure/table
/// benchmarks. Every bench prints the paper-style rows to stdout and
/// mirrors them to `$RESULTS_DIR/<name>.csv` (default ./results).
///
/// With `BENCH_METRICS=1` in the environment every row gets an extra
/// "metrics" column holding the deltas of all engine counters and histogram
/// sums (common/metrics.h) accumulated since the previous row, formatted
/// `name=value;...` — per-approach build/convert/inference breakdowns for
/// every bench binary without touching the benches themselves.
class ReportTable {
 public:
  ReportTable(std::string name, std::vector<std::string> columns);
  ~ReportTable();

  /// Adds one row (values already formatted; the metrics column, when
  /// enabled, is appended automatically).
  void AddRow(std::vector<std::string> values);

  /// Prints the table to stdout and writes the CSV.
  void Finish();

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool finished_ = false;
  bool metrics_enabled_ = false;
  /// Counter/histogram snapshot at the previous AddRow (delta base).
  std::map<std::string, int64_t> metrics_base_;
};

/// Formats seconds with 4 significant digits ("0.0123").
std::string FormatSeconds(double seconds);

/// Benchmark scale selected via the REPRO_SCALE environment variable:
///   (unset) / "ci"  — laptop-sized sweeps (minutes)
///   "paper"         — the paper's §6.1 parameters (hours on small machines)
struct ScaleConfig {
  bool paper_scale = false;
  std::vector<int64_t> dense_widths;
  std::vector<int64_t> dense_depths;
  std::vector<int64_t> lstm_widths;
  std::vector<int64_t> fact_sizes;       ///< Figure 8/9 sweep
  int64_t memory_fact_size = 0;          ///< Table 3
  /// ML-To-SQL cells are skipped when tuples * width * (depth+1) exceeds
  /// this budget (the paper's own "bad scalability" region); 0 = no cap.
  int64_t mltosql_row_budget = 0;

  static ScaleConfig FromEnv();
};

}  // namespace indbml::benchlib

#endif  // INDBML_BENCHLIB_REPORT_H_
