#include "benchlib/workloads.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace indbml::benchlib {

using storage::DataType;
using storage::Field;
using storage::Value;

namespace {

/// Per-class feature means and standard deviations of the classic Iris
/// dataset (Fisher 1936): sepal length/width, petal length/width for
/// setosa, versicolor, virginica.
struct ClassStats {
  float mean[4];
  float stddev[4];
};
constexpr ClassStats kIrisStats[3] = {
    {{5.006f, 3.428f, 1.462f, 0.246f}, {0.352f, 0.379f, 0.174f, 0.105f}},
    {{5.936f, 2.770f, 4.260f, 1.326f}, {0.516f, 0.314f, 0.470f, 0.198f}},
    {{6.588f, 2.974f, 5.552f, 2.026f}, {0.636f, 0.322f, 0.552f, 0.275f}},
};

/// The deterministic 150-row base replica (50 rows per class, seed fixed).
void BaseIris(std::vector<float>* features, std::vector<int64_t>* classes) {
  Random rng(1936);
  features->clear();
  classes->clear();
  features->reserve(kIrisBaseRows * 4);
  classes->reserve(kIrisBaseRows);
  for (int cls = 0; cls < 3; ++cls) {
    for (int i = 0; i < kIrisBaseRows / 3; ++i) {
      for (int f = 0; f < 4; ++f) {
        float v = kIrisStats[cls].mean[f] + kIrisStats[cls].stddev[f] *
                                                rng.NextGaussian();
        features->push_back(std::max(0.1f, v));
      }
      classes->push_back(cls);
    }
  }
}

}  // namespace

void IrisFeatures(int64_t num_rows, std::vector<float>* features,
                  std::vector<int64_t>* classes) {
  std::vector<float> base_features;
  std::vector<int64_t> base_classes;
  BaseIris(&base_features, &base_classes);
  features->clear();
  classes->clear();
  features->reserve(static_cast<size_t>(num_rows) * 4);
  classes->reserve(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    size_t b = static_cast<size_t>(i % kIrisBaseRows);
    for (int f = 0; f < 4; ++f) {
      features->push_back(base_features[b * 4 + static_cast<size_t>(f)]);
    }
    classes->push_back(base_classes[b]);
  }
}

storage::TablePtr MakeIrisTable(const std::string& name, int64_t num_rows) {
  std::vector<float> features;
  std::vector<int64_t> classes;
  IrisFeatures(num_rows, &features, &classes);

  auto table = std::make_shared<storage::Table>(
      name, std::vector<Field>{{"id", DataType::kInt64},
                               {"sepal_length", DataType::kFloat},
                               {"sepal_width", DataType::kFloat},
                               {"petal_length", DataType::kFloat},
                               {"petal_width", DataType::kFloat},
                               {"class", DataType::kInt64}});
  table->Reserve(num_rows);
  for (int64_t i = 0; i < num_rows; ++i) {
    size_t o = static_cast<size_t>(i) * 4;
    INDBML_CHECK(table
                     ->AppendRow({Value::Int64(i), Value::Float(features[o]),
                                  Value::Float(features[o + 1]),
                                  Value::Float(features[o + 2]),
                                  Value::Float(features[o + 3]),
                                  Value::Int64(classes[static_cast<size_t>(i)])})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

storage::TablePtr MakeSinusTable(const std::string& name, int64_t num_rows,
                                 int64_t timesteps) {
  std::vector<Field> fields{{"id", DataType::kInt64}};
  for (int64_t t = 0; t < timesteps; ++t) {
    fields.push_back({StrFormat("x%lld", static_cast<long long>(t)),
                      DataType::kFloat});
  }
  auto table = std::make_shared<storage::Table>(name, fields);
  table->Reserve(num_rows);
  for (int64_t i = 0; i < num_rows; ++i) {
    std::vector<Value> row{Value::Int64(i)};
    for (int64_t t = 0; t < timesteps; ++t) {
      row.push_back(Value::Float(
          std::sin(0.1 * static_cast<double>(i + t))));
    }
    INDBML_CHECK(table->AppendRow(row).ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

storage::TablePtr MakeRawSinusSeries(const std::string& name, int64_t num_points) {
  auto table = std::make_shared<storage::Table>(
      name, std::vector<Field>{{"t", DataType::kInt64}, {"value", DataType::kFloat}});
  table->Reserve(num_points);
  for (int64_t i = 0; i < num_points; ++i) {
    INDBML_CHECK(
        table
            ->AppendRow({Value::Int64(i),
                         Value::Float(std::sin(0.1 * static_cast<double>(i)))})
            .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("t");
  table->SetSortedBy({"t"});
  return table;
}

std::string BuildSelfJoinSql(const std::string& series_table, int64_t timesteps) {
  // s0 carries the anchor position; s_t matches its t-th successor.
  std::string select = "SELECT s0.t AS id";
  std::string from = StrFormat("%s AS s0", series_table.c_str());
  std::string where;
  for (int64_t t = 0; t < timesteps; ++t) {
    if (t == 0) {
      select += ", s0.value AS x0";
      continue;
    }
    select += StrFormat(", s%lld.value AS x%lld", static_cast<long long>(t),
                        static_cast<long long>(t));
    from += StrFormat(", %s AS s%lld", series_table.c_str(),
                      static_cast<long long>(t));
    if (!where.empty()) where += " AND ";
    where += StrFormat("s%lld.t = s0.t + %lld", static_cast<long long>(t),
                       static_cast<long long>(t));
  }
  std::string sql = select + " FROM " + from;
  if (!where.empty()) sql += " WHERE " + where;
  return sql;
}

}  // namespace indbml::benchlib
