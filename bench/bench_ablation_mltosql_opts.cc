// Ablation of the ML-To-SQL optimizations (paper §4.4): unique node ids,
// range/layer filter predicates, and the sorted model table (which enables
// order-based aggregation). Also toggles the engine-side ordered-aggregation
// rule to isolate its effect on runtime and peak memory.

#include <cstdio>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/stopwatch.h"
#include "mltosql/mltosql.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

struct Variant {
  const char* label;
  mltosql::MlToSqlOptions options;
  bool ordered_aggregation;
};

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t tuples = scale.paper_scale ? 100000 : 8000;
  const int64_t width = scale.paper_scale ? 128 : 32;
  const int64_t depth = 2;

  std::vector<Variant> variants;
  {
    Variant all{"all optimizations", {}, true};
    variants.push_back(all);
    Variant pair_ids{"pair ids (no unique node ids)", {}, true};
    pair_ids.options.unique_node_ids = false;
    variants.push_back(pair_ids);
    Variant no_filters{"no range filters", {}, true};
    no_filters.options.range_filters = false;
    variants.push_back(no_filters);
    Variant unsorted{"unsorted model table", {}, true};
    unsorted.options.sorted_model_table = false;
    variants.push_back(unsorted);
    Variant hash_agg{"hash aggregation (rule off)", {}, false};
    variants.push_back(hash_agg);
    Variant none{"no optimizations", {}, false};
    none.options.unique_node_ids = false;
    none.options.range_filters = false;
    none.options.sorted_model_table = false;
    variants.push_back(none);
  }

  auto model_or = nn::MakeDenseBenchmarkModel(width, depth);
  INDBML_CHECK(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();

  ReportTable table("ablation_mltosql_opts",
                    {"variant", "seconds", "peak_bytes", "peak_human"});
  double checksum_reference = 0;
  bool have_reference = false;

  for (const Variant& variant : variants) {
    sql::QueryEngine::Options engine_options;
    engine_options.optimizer.ordered_aggregation = variant.ordered_aggregation;
    sql::QueryEngine engine(engine_options);
    engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));

    mltosql::MlToSql framework(&model, "m", variant.options);
    INDBML_CHECK(framework.Deploy(&engine).ok());
    mltosql::FactTableInfo info;
    info.table = "fact";
    info.input_columns = {"sepal_length", "sepal_width", "petal_length",
                          "petal_width"};
    auto sql_or = framework.GenerateInferenceSql(info);
    INDBML_CHECK(sql_or.ok());

    MemoryTracker& tracker = MemoryTracker::Global();
    int64_t baseline = tracker.current_bytes();
    tracker.ResetPeak();
    Stopwatch watch;
    auto result = engine.ExecuteQuery(*sql_or);
    double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "[ablation] %s failed: %s\n", variant.label,
                   result.status().ToString().c_str());
      return 1;
    }
    int64_t peak = tracker.peak_bytes() - baseline;

    // All variants must agree numerically.
    double checksum = 0;
    auto pred_col = result->ColumnIndex("prediction");
    INDBML_CHECK(pred_col.ok());
    for (int64_t r = 0; r < result->num_rows; ++r) {
      checksum += result->GetValue(r, *pred_col).AsDouble();
    }
    if (!have_reference) {
      checksum_reference = checksum;
      have_reference = true;
    } else {
      INDBML_CHECK(std::abs(checksum - checksum_reference) <
                   1e-3 * (1 + std::abs(checksum_reference)))
          << variant.label << " diverged";
    }

    table.AddRow({variant.label, FormatSeconds(seconds), std::to_string(peak),
                  FormatBytes(peak)});
    std::printf("[ablation] %-32s %10.4fs  peak=%s\n", variant.label, seconds,
                FormatBytes(peak).c_str());
    std::fflush(stdout);
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
