// Ablation of the simulated-GPU cost model: sweeps the compute speedup and
// the kernel-launch overhead to show where the paper's GPU conclusions come
// from — transfer/launch overhead dominates small models (GPU ≈ CPU), while
// compute speedup wins for large models (§6.2.1).

#include <cstdio>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/stopwatch.h"
#include "mlruntime/runtime.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

/// Measures one model on a dedicated SimGpu with the given options,
/// returning the adjusted (modeled) seconds for a fixed batch workload.
Result<double> MeasureGpu(const nn::Model& model, const device::SimGpuOptions& gpu,
                          int64_t tuples) {
  auto device = device::MakeSimGpuDevice(gpu);
  INDBML_ASSIGN_OR_RETURN(auto session,
                          mlruntime::Session::Create(model, "gpu", device.get()));
  std::vector<float> input(static_cast<size_t>(tuples * model.input_width()));
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i % 97) * 0.01f;
  }
  std::vector<float> output(static_cast<size_t>(tuples * model.output_dim()));
  device->ResetStats();
  Stopwatch watch;
  // Vector-at-a-time like the engine.
  for (int64_t start = 0; start < tuples; start += 1024) {
    int64_t n = std::min<int64_t>(1024, tuples - start);
    INDBML_RETURN_NOT_OK(session->Run(input.data() + start * model.input_width(), n,
                                      output.data() + start * model.output_dim()));
  }
  double wall = watch.ElapsedSeconds();
  device::DeviceStats stats = device->stats();
  return wall - stats.real_seconds + stats.modeled_seconds;
}

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t tuples = scale.paper_scale ? 100000 : 8000;

  ReportTable table("ablation_simgpu",
                    {"model", "compute_speedup", "launch_overhead_us", "seconds"});

  std::vector<std::pair<const char*, nn::Model>> models;
  {
    auto small = nn::MakeDenseBenchmarkModel(16, 2);
    auto large = nn::MakeDenseBenchmarkModel(scale.paper_scale ? 512 : 128, 4);
    INDBML_CHECK(small.ok() && large.ok());
    models.emplace_back("small dense", std::move(small).ValueOrDie());
    models.emplace_back("large dense", std::move(large).ValueOrDie());
  }

  for (auto& [label, model] : models) {
    for (double speedup : {1.0, 4.0, 8.0, 16.0}) {
      for (double launch_us : {0.0, 5.0, 50.0}) {
        device::SimGpuOptions options;
        options.compute_speedup = speedup;
        options.kernel_launch_seconds = launch_us * 1e-6;
        auto seconds = MeasureGpu(model, options, tuples);
        if (!seconds.ok()) {
          std::fprintf(stderr, "[simgpu] failed: %s\n",
                       seconds.status().ToString().c_str());
          return 1;
        }
        table.AddRow({label, indbml::StrFormat("%.0f", speedup), indbml::StrFormat("%.0f", launch_us),
                      FormatSeconds(*seconds)});
        std::printf("[simgpu] %-12s speedup=%-4.0f launch=%3.0fus  %10.4fs\n", label,
                    speedup, launch_us, *seconds);
      }
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
