// Serving benchmark (ISSUE 9): closed-loop QPS and tail latency of the
// session → shared-executor stack under concurrent sessions, on the
// Figure-8 dense ModelJoin workload.
//
// Each cell runs a fixed total number of queries split across N client
// sessions (N in {1, 8, 64, 256}), with the plan cache and shared-model
// registry toggled, plus the pre-serving baseline: the same total run
// back-to-back through a bare QueryEngine (one query at a time, per-query
// model build). Reported: QPS, p50/p95/p99 latency. REPRO_SCALE=paper
// enlarges the fact table and query count.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "modeljoin/model_registry.h"
#include "modeljoin/register.h"
#include "mltosql/mltosql.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "server/server.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

constexpr int64_t kModelWidth = 32;
constexpr int64_t kModelDepth = 3;

struct Latencies {
  std::vector<int64_t> micros;

  double Percentile(double p) const {
    if (micros.empty()) return 0;
    size_t idx = static_cast<size_t>(p * static_cast<double>(micros.size() - 1));
    return static_cast<double>(micros[idx]) / 1000.0;  // ms
  }
};

std::string DenseQuery() {
  return "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'dense' "
         "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
         "petal_width)";
}

void DeployModel(sql::QueryEngine* engine) {
  auto model_or = nn::MakeDenseBenchmarkModel(kModelWidth, kModelDepth);
  INDBML_CHECK(model_or.ok()) << model_or.status().ToString();
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  INDBML_CHECK(framework.Deploy(engine).ok());
  engine->models()->Register(nn::MetaOf(model, "dense"));
}

struct CellResult {
  double wall_seconds = 0;
  int64_t queries = 0;
  Latencies latencies;

  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds : 0;
  }
};

/// Back-to-back baseline: the pre-serving model — one bare engine, queries
/// strictly sequential, per-query model build.
CellResult RunBackToBack(int64_t fact_rows, int64_t total_queries) {
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", fact_rows));
  DeployModel(&engine);
  const std::string query = DenseQuery();

  CellResult cell;
  cell.queries = total_queries;
  cell.latencies.micros.reserve(static_cast<size_t>(total_queries));
  Stopwatch wall;
  for (int64_t q = 0; q < total_queries; ++q) {
    Stopwatch latency;
    auto result = engine.ExecuteQuery(query);
    INDBML_CHECK(result.ok()) << result.status().ToString();
    INDBML_CHECK(result.ValueOrDie().num_rows == fact_rows);
    cell.latencies.micros.push_back(latency.ElapsedMicros());
  }
  cell.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;
  std::sort(cell.latencies.micros.begin(), cell.latencies.micros.end());
  return cell;
}

/// Closed-loop serving cell: `sessions` client threads, each draining its
/// share of `total_queries` against one QueryServer.
CellResult RunServing(int64_t fact_rows, int sessions, int64_t total_queries,
                      bool plan_cache, bool shared_models) {
  modeljoin::SharedModelRegistry::Global().Clear();
  server::QueryServer::Options options;
  options.engine.shared_models = shared_models;
  options.enable_plan_cache = plan_cache;
  options.max_inflight_queries = 16;
  // The bench measures executor throughput, not admission pushback: size the
  // wait queue so no closed-loop client is ever rejected.
  options.max_queued_queries = static_cast<int>(total_queries) + sessions;
  server::QueryServer srv(options);
  modeljoin::RegisterNativeModelJoin(srv.engine());
  srv.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", fact_rows));
  DeployModel(srv.engine());
  const std::string query = DenseQuery();

  {  // Warm-up (untimed): first build + first plan.
    auto warm = srv.CreateSession();
    auto result = warm->ExecuteQuery(query);
    INDBML_CHECK(result.ok()) << result.status().ToString();
  }

  std::vector<std::vector<int64_t>> per_client(static_cast<size_t>(sessions));
  std::atomic<int64_t> remaining{total_queries};
  CellResult cell;
  Stopwatch wall;
  {
    ThreadPool clients(sessions);
    clients.ParallelFor(sessions, [&](int client) {
      auto session = srv.CreateSession();
      auto& lat = per_client[static_cast<size_t>(client)];
      while (remaining.fetch_sub(1) > 0) {
        Stopwatch latency;
        auto result = session->ExecuteQuery(query);
        INDBML_CHECK(result.ok()) << result.status().ToString();
        INDBML_CHECK(result.ValueOrDie().num_rows == fact_rows);
        lat.push_back(latency.ElapsedMicros());
      }
    });
  }
  cell.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;
  for (auto& lat : per_client) {
    cell.latencies.micros.insert(cell.latencies.micros.end(), lat.begin(),
                                 lat.end());
  }
  cell.queries = static_cast<int64_t>(cell.latencies.micros.size());
  std::sort(cell.latencies.micros.begin(), cell.latencies.micros.end());
  return cell;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void AddRow(ReportTable* table, const std::string& mode, int sessions,
            bool plan_cache, bool shared_models, const CellResult& cell) {
  table->AddRow({mode, std::to_string(sessions), plan_cache ? "on" : "off",
                 shared_models ? "on" : "off", std::to_string(cell.queries),
                 FormatSeconds(cell.wall_seconds), Fmt(cell.qps()),
                 Fmt(cell.latencies.Percentile(0.50)),
                 Fmt(cell.latencies.Percentile(0.95)),
                 Fmt(cell.latencies.Percentile(0.99))});
  std::printf(
      "[serving] %-11s sessions=%-4d cache=%-3s shared=%-3s qps=%9.2f "
      "p50=%8.2fms p95=%8.2fms p99=%8.2fms\n",
      mode.c_str(), sessions, plan_cache ? "on" : "off",
      shared_models ? "on" : "off", cell.qps(), cell.latencies.Percentile(0.50),
      cell.latencies.Percentile(0.95), cell.latencies.Percentile(0.99));
  std::fflush(stdout);
}

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  // Serving workload: many small inference queries. Per-query fixed costs
  // (parse/bind/optimize + ModelJoin build) are comparable to execution, so
  // the plan cache and shared-model registry — not raw scan speed — decide
  // throughput. That is the regime the serving stack exists for.
  const int64_t fact_rows = scale.paper_scale ? 10000 : 1000;
  const int64_t total_queries = scale.paper_scale ? 512 : 96;

  ReportTable table("serving_throughput",
                    {"mode", "sessions", "plan_cache", "shared_models",
                     "queries", "wall_seconds", "qps", "p50_ms", "p95_ms",
                     "p99_ms"});

  CellResult baseline = RunBackToBack(fact_rows, total_queries);
  AddRow(&table, "backtoback", 1, false, false, baseline);

  double qps_8_sessions = 0;
  for (int sessions : {1, 8, 64, 256}) {
    // Full serving stack, then the two ablations (no plan cache; no shared
    // models — per-query build forces single-instance ModelJoin jobs).
    CellResult full =
        RunServing(fact_rows, sessions, total_queries, true, true);
    AddRow(&table, "serving", sessions, true, true, full);
    if (sessions == 8) qps_8_sessions = full.qps();

    CellResult no_cache =
        RunServing(fact_rows, sessions, total_queries, false, true);
    AddRow(&table, "serving", sessions, false, true, no_cache);

    CellResult no_shared =
        RunServing(fact_rows, sessions, total_queries, true, false);
    AddRow(&table, "serving", sessions, true, false, no_shared);
  }

  table.Finish();
  std::printf("[serving] 8-session speedup over back-to-back: %.2fx\n",
              baseline.qps() > 0 ? qps_8_sessions / baseline.qps() : 0);
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
