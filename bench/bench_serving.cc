// Serving benchmark (ISSUES 9 + 10): closed-loop QPS and tail latency of
// the session → shared-executor stack under concurrent sessions, on the
// Figure-8 dense ModelJoin workload.
//
// Each cell runs a fixed total number of queries split across N client
// sessions (N in {1, 8, 64, 256}), with the plan cache and shared-model
// registry toggled, plus the pre-serving baseline: the same total run
// back-to-back through a bare QueryEngine (one query at a time, per-query
// model build). An ablation block at 8 sessions toggles the inference
// micro-batcher and result cache independently to isolate what each buys
// over per-query inference launches (the paper's small-per-query-batch
// problem); those cells run on the simulated GPU, where every kernel
// dispatch carries the modeled launch overhead that Figure 8 is about, and
// report the modeled-adjusted time (wall − real + modeled, DESIGN.md §2).
// Reported: QPS, p50/p95/p99 latency, coalesced-launch and cache-hit
// counts. REPRO_SCALE=paper enlarges the fact table and query count;
// --json mirrors the table to $RESULTS_DIR/bench_serving.json.

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "device/device.h"
#include "inference/cache.h"
#include "modeljoin/model_registry.h"
#include "modeljoin/register.h"
#include "mltosql/mltosql.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "server/server.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

constexpr int64_t kModelWidth = 32;
constexpr int64_t kModelDepth = 3;

struct Latencies {
  std::vector<int64_t> micros;

  double Percentile(double p) const {
    if (micros.empty()) return 0;
    size_t idx = static_cast<size_t>(p * static_cast<double>(micros.size() - 1));
    return static_cast<double>(micros[idx]) / 1000.0;  // ms
  }
};

std::string DenseQuery(bool gpu = false) {
  return std::string(
             "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL "
             "'dense' DEVICE '") +
         (gpu ? "gpu" : "cpu") +
         "' PREDICT (sepal_length, sepal_width, petal_length, petal_width)";
}

void DeployModel(sql::QueryEngine* engine) {
  auto model_or = nn::MakeDenseBenchmarkModel(kModelWidth, kModelDepth);
  INDBML_CHECK(model_or.ok()) << model_or.status().ToString();
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  INDBML_CHECK(framework.Deploy(engine).ok());
  engine->models()->Register(nn::MetaOf(model, "dense"));
}

int64_t CounterValue(const char* name) {
  return metrics::Registry::Global().counter(name)->value();
}

/// Which serving-stack layers a cell runs with. The inference knobs map to
/// QueryServer defaults (batching: 100 µs window; cache: 32 MB LRU) or a
/// hard off (window 0 / capacity 0).
struct Knobs {
  bool plan_cache = true;
  bool shared_models = true;
  bool batching = true;
  bool inf_cache = true;
  /// Morsel override (0 = engine default). The inference ablation shrinks
  /// this to put per-query launches in the paper's small-batch regime:
  /// with one 16k-row morsel per query, each query is a single inference
  /// call and there is nothing for the batcher to coalesce.
  int64_t morsel_rows = 0;
  /// Run the ModelJoin on the simulated GPU. Coalescing pays off where
  /// launches carry real fixed cost — on an accelerator (paper Figure 8),
  /// not on a host CPU whose per-launch overhead is smaller than a context
  /// switch. GPU cells report modeled-adjusted time (DESIGN.md §2).
  bool gpu = false;
};

struct CellResult {
  double wall_seconds = 0;
  /// GPU cells only: wall − real emulation time + modeled device time
  /// (the DESIGN.md §2 substitution that makes simulated-GPU results
  /// deterministic and host-independent). 0 for CPU cells.
  double adjusted_seconds = 0;
  int64_t queries = 0;
  Latencies latencies;
  int64_t inf_batches = 0;  ///< coalesced inference launches in the timed loop
  int64_t cache_hits = 0;   ///< rows served from the inference result cache
  int64_t kernel_launches = 0;  ///< modeled device kernels (GPU cells only)

  /// Modeled time for GPU cells, wall time otherwise.
  double seconds() const {
    return adjusted_seconds > 0 ? adjusted_seconds : wall_seconds;
  }
  double qps() const {
    return seconds() > 0 ? static_cast<double>(queries) / seconds() : 0;
  }
};

/// Back-to-back baseline: the pre-serving model — one bare engine, queries
/// strictly sequential, per-query model build, no batching, no cache.
CellResult RunBackToBack(int64_t fact_rows, int64_t total_queries) {
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", fact_rows));
  DeployModel(&engine);
  const std::string query = DenseQuery();

  CellResult cell;
  cell.queries = total_queries;
  cell.latencies.micros.reserve(static_cast<size_t>(total_queries));
  Stopwatch wall;
  for (int64_t q = 0; q < total_queries; ++q) {
    Stopwatch latency;
    auto result = engine.ExecuteQuery(query);
    INDBML_CHECK(result.ok()) << result.status().ToString();
    INDBML_CHECK(result.ValueOrDie().num_rows == fact_rows);
    cell.latencies.micros.push_back(latency.ElapsedMicros());
  }
  cell.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;
  std::sort(cell.latencies.micros.begin(), cell.latencies.micros.end());
  return cell;
}

/// Closed-loop serving cell: `sessions` client threads, each draining its
/// share of `total_queries` against one QueryServer configured per `knobs`.
CellResult RunServing(int64_t fact_rows, int sessions, int64_t total_queries,
                      const Knobs& knobs) {
  modeljoin::SharedModelRegistry::Global().Clear();
  inference::InferenceCache::Global().Clear();
  server::QueryServer::Options options;
  options.engine.shared_models = knobs.shared_models;
  options.enable_plan_cache = knobs.plan_cache;
  if (!knobs.batching) options.engine.inference.batch_window_us = 0;
  options.engine.inference.result_cache = knobs.inf_cache;
  if (!knobs.inf_cache) options.inference_cache_mb = 0;
  if (knobs.morsel_rows > 0) options.engine.morsel_rows = knobs.morsel_rows;
  // Fixed worker pool: the executor otherwise sizes to hardware_concurrency,
  // and on a 1-core CI box that means one worker — no morsel scheduling, no
  // concurrent inference calls, nothing for the batcher to coalesce. Eight
  // workers keep the cells comparable across machines.
  options.worker_threads = 8;
  options.max_inflight_queries = 16;
  // The bench measures executor throughput, not admission pushback: size the
  // wait queue so no closed-loop client is ever rejected.
  options.max_queued_queries = static_cast<int>(total_queries) + sessions;
  server::QueryServer srv(options);
  modeljoin::RegisterNativeModelJoin(srv.engine());
  srv.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", fact_rows));
  DeployModel(srv.engine());
  const std::string query = DenseQuery(knobs.gpu);

  {  // Warm-up (untimed): first build + first plan + first cache fill, so
     // the timed loop measures steady-state hits rather than cold misses.
    auto warm = srv.CreateSession();
    auto result = warm->ExecuteQuery(query);
    INDBML_CHECK(result.ok()) << result.status().ToString();
  }
  const int64_t batches0 = CounterValue("inference.batches");
  const int64_t hits0 = CounterValue("inference.cache_hits");
  const device::DeviceStats gpu0 = device::SharedSimGpuDevice()->stats();

  std::vector<std::vector<int64_t>> per_client(static_cast<size_t>(sessions));
  std::atomic<int64_t> remaining{total_queries};
  CellResult cell;
  Stopwatch wall;
  {
    ThreadPool clients(sessions);
    clients.ParallelFor(sessions, [&](int client) {
      auto session = srv.CreateSession();
      auto& lat = per_client[static_cast<size_t>(client)];
      while (remaining.fetch_sub(1) > 0) {
        Stopwatch latency;
        auto result = session->ExecuteQuery(query);
        INDBML_CHECK(result.ok()) << result.status().ToString();
        INDBML_CHECK(result.ValueOrDie().num_rows == fact_rows);
        lat.push_back(latency.ElapsedMicros());
      }
    });
  }
  cell.wall_seconds = static_cast<double>(wall.ElapsedMicros()) / 1e6;
  cell.inf_batches = CounterValue("inference.batches") - batches0;
  cell.cache_hits = CounterValue("inference.cache_hits") - hits0;
  if (knobs.gpu) {
    const device::DeviceStats gpu1 = device::SharedSimGpuDevice()->stats();
    cell.adjusted_seconds = cell.wall_seconds -
                            (gpu1.real_seconds - gpu0.real_seconds) +
                            (gpu1.modeled_seconds - gpu0.modeled_seconds);
    cell.kernel_launches = gpu1.kernel_launches - gpu0.kernel_launches;
  }
  for (auto& lat : per_client) {
    cell.latencies.micros.insert(cell.latencies.micros.end(), lat.begin(),
                                 lat.end());
  }
  cell.queries = static_cast<int64_t>(cell.latencies.micros.size());
  std::sort(cell.latencies.micros.begin(), cell.latencies.micros.end());
  return cell;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// One reported row, kept structured so the table and the JSON mirror agree.
struct RowRec {
  std::string mode;
  int sessions = 1;
  Knobs knobs;
  CellResult cell;
};

void AddRow(ReportTable* table, std::vector<RowRec>* rows,
            const std::string& mode, int sessions, const Knobs& knobs,
            const CellResult& cell) {
  rows->push_back({mode, sessions, knobs, cell});
  auto onoff = [](bool b) { return b ? "on" : "off"; };
  const char* device = knobs.gpu ? "gpu" : "cpu";
  table->AddRow({mode, std::to_string(sessions), device,
                 onoff(knobs.plan_cache), onoff(knobs.shared_models),
                 onoff(knobs.batching), onoff(knobs.inf_cache),
                 std::to_string(cell.queries), FormatSeconds(cell.seconds()),
                 Fmt(cell.qps()), Fmt(cell.latencies.Percentile(0.50)),
                 Fmt(cell.latencies.Percentile(0.95)),
                 Fmt(cell.latencies.Percentile(0.99)),
                 std::to_string(cell.inf_batches),
                 std::to_string(cell.cache_hits)});
  std::printf(
      "[serving] %-11s sessions=%-4d dev=%s plan=%-3s shared=%-3s batch=%-3s "
      "icache=%-3s qps=%9.2f p50=%8.2fms p95=%8.2fms p99=%8.2fms "
      "batches=%-5lld hits=%lld\n",
      mode.c_str(), sessions, device, onoff(knobs.plan_cache),
      onoff(knobs.shared_models), onoff(knobs.batching), onoff(knobs.inf_cache),
      cell.qps(), cell.latencies.Percentile(0.50),
      cell.latencies.Percentile(0.95), cell.latencies.Percentile(0.99),
      static_cast<long long>(cell.inf_batches),
      static_cast<long long>(cell.cache_hits));
  std::fflush(stdout);
}

int WriteJson(const std::vector<RowRec>& rows, int64_t fact_rows,
              int64_t total_queries, double batching_speedup,
              double cache_speedup, double serving_speedup) {
  const char* dir = std::getenv("RESULTS_DIR");
  std::string results_dir = dir != nullptr ? dir : "results";
  ::mkdir(results_dir.c_str(), 0755);
  std::string path = results_dir + "/bench_serving.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"fact_rows\": %lld,\n  \"total_queries\": %lld,\n"
               "  \"batching_speedup_8_sessions\": %.4g,\n"
               "  \"cache_speedup_8_sessions\": %.4g,\n"
               "  \"serving_speedup_8_sessions\": %.4g,\n  \"cells\": [\n",
               static_cast<long long>(fact_rows),
               static_cast<long long>(total_queries), batching_speedup,
               cache_speedup, serving_speedup);
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowRec& r = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"sessions\": %d, \"device\": \"%s\", "
        "\"plan_cache\": %s, "
        "\"shared_models\": %s, \"batching\": %s, \"inference_cache\": %s, "
        "\"queries\": %lld, \"wall_seconds\": %.6g, \"seconds\": %.6g, "
        "\"qps\": %.6g, "
        "\"p50_ms\": %.6g, \"p95_ms\": %.6g, \"p99_ms\": %.6g, "
        "\"inference_batches\": %lld, \"cache_hits\": %lld, "
        "\"kernel_launches\": %lld}%s\n",
        r.mode.c_str(), r.sessions, r.knobs.gpu ? "gpu" : "cpu",
        r.knobs.plan_cache ? "true" : "false",
        r.knobs.shared_models ? "true" : "false",
        r.knobs.batching ? "true" : "false",
        r.knobs.inf_cache ? "true" : "false",
        static_cast<long long>(r.cell.queries), r.cell.wall_seconds,
        r.cell.seconds(), r.cell.qps(), r.cell.latencies.Percentile(0.50),
        r.cell.latencies.Percentile(0.95), r.cell.latencies.Percentile(0.99),
        static_cast<long long>(r.cell.inf_batches),
        static_cast<long long>(r.cell.cache_hits),
        static_cast<long long>(r.cell.kernel_launches),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json: %s)\n", path.c_str());
  return 0;
}

int Run(bool emit_json) {
  ScaleConfig scale = ScaleConfig::FromEnv();
  // Serving workload: many small inference queries. Per-query fixed costs
  // (parse/bind/optimize + ModelJoin build) are comparable to execution, so
  // the plan cache, shared-model registry and inference batcher/cache — not
  // raw scan speed — decide throughput. That is the regime the serving
  // stack exists for.
  const int64_t fact_rows = scale.paper_scale ? 10000 : 1000;
  const int64_t total_queries = scale.paper_scale ? 512 : 96;

  ReportTable table("serving_throughput",
                    {"mode", "sessions", "device", "plan_cache",
                     "shared_models", "batching", "inf_cache", "queries",
                     "seconds", "qps", "p50_ms", "p95_ms", "p99_ms", "batches",
                     "cache_hits"});
  std::vector<RowRec> rows;

  CellResult baseline = RunBackToBack(fact_rows, total_queries);
  AddRow(&table, &rows, "backtoback", 1, {false, false, false, false},
         baseline);

  CellResult full8;
  for (int sessions : {1, 8, 64, 256}) {
    // Full serving stack (all defaults on), then the two ISSUE-9 ablations
    // (no plan cache; no shared models — per-query build forces
    // single-instance ModelJoin jobs).
    CellResult full =
        RunServing(fact_rows, sessions, total_queries, Knobs{});
    AddRow(&table, &rows, "serving", sessions, Knobs{}, full);
    if (sessions == 8) full8 = full;

    Knobs no_plan;
    no_plan.plan_cache = false;
    AddRow(&table, &rows, "serving", sessions, no_plan,
           RunServing(fact_rows, sessions, total_queries, no_plan));

    Knobs no_shared;
    no_shared.shared_models = false;
    AddRow(&table, &rows, "serving", sessions, no_shared,
           RunServing(fact_rows, sessions, total_queries, no_shared));
  }

  // ISSUE-10 ablation at 8 sessions: toggle the inference micro-batcher and
  // result cache independently, with the rest of the stack fixed at serving
  // defaults and morsels shrunk so every query issues many small inference
  // calls — the paper's small-per-query-batch regime, where coalescing has
  // something to merge. The cells run the ModelJoin on the simulated GPU:
  // there every kernel dispatch carries the modeled launch overhead that
  // makes small per-query batches expensive in the first place (Figure 8),
  // so QPS is computed over modeled-adjusted time. `batch_only` vs
  // `neither` isolates cross-query coalescing; `both` vs `batch_only`
  // isolates memoized repeat traffic skipping the launches entirely.
  constexpr int kAblateSessions = 8;
  constexpr int64_t kAblateMorselRows = 128;
  Knobs both;
  both.morsel_rows = kAblateMorselRows;
  both.gpu = true;
  CellResult both_cell =
      RunServing(fact_rows, kAblateSessions, total_queries, both);
  AddRow(&table, &rows, "ablate_inf", kAblateSessions, both, both_cell);

  Knobs batch_only = both;
  batch_only.inf_cache = false;
  CellResult batch_cell =
      RunServing(fact_rows, kAblateSessions, total_queries, batch_only);
  AddRow(&table, &rows, "ablate_inf", kAblateSessions, batch_only, batch_cell);

  Knobs cache_only = both;
  cache_only.batching = false;
  CellResult cache_cell =
      RunServing(fact_rows, kAblateSessions, total_queries, cache_only);
  AddRow(&table, &rows, "ablate_inf", kAblateSessions, cache_only, cache_cell);

  Knobs neither = both;
  neither.batching = false;
  neither.inf_cache = false;
  CellResult neither_cell =
      RunServing(fact_rows, kAblateSessions, total_queries, neither);
  AddRow(&table, &rows, "ablate_inf", kAblateSessions, neither, neither_cell);

  table.Finish();
  const double serving_speedup =
      baseline.qps() > 0 ? full8.qps() / baseline.qps() : 0;
  const double batching_speedup =
      neither_cell.qps() > 0 ? batch_cell.qps() / neither_cell.qps() : 0;
  const double cache_speedup =
      batch_cell.qps() > 0 ? both_cell.qps() / batch_cell.qps() : 0;
  std::printf("[serving] 8-session speedup over back-to-back: %.2fx\n",
              serving_speedup);
  std::printf(
      "[serving] 8-session batching speedup over per-query launches (sim "
      "GPU, modeled time): %.2fx (%lld coalesced launches vs %lld; %lld "
      "device kernels vs %lld)\n",
      batching_speedup, static_cast<long long>(batch_cell.inf_batches),
      static_cast<long long>(neither_cell.inf_batches),
      static_cast<long long>(batch_cell.kernel_launches),
      static_cast<long long>(neither_cell.kernel_launches));
  std::printf(
      "[serving] 8-session cache speedup over batching alone: %.2fx "
      "(%lld rows served without touching the device)\n",
      cache_speedup, static_cast<long long>(both_cell.cache_hits));

  if (emit_json) {
    return WriteJson(rows, fact_rows, total_queries, batching_speedup,
                     cache_speedup, serving_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return indbml::benchlib::Run(json);
}
