// Ablation of the parallel scheduler: static partition-per-thread (the
// engine's historical mode) vs the work-stealing morsel pipeline. Two
// workloads over the same query shape: "uniform" spreads filter survivors
// evenly across the table, "skewed" packs them into one contiguous 10%
// span, which static partitioning hands almost entirely to one thread
// (zone maps prune the cold blocks, so the other threads finish almost
// immediately) while morsel workers keep stealing hot morsels.
//
// Methodology: raw multi-threaded wall time conflates scheduling quality
// with however many cores the benchmark host happens to have (on a 1-core
// container every scheduler "ties"). Instead — in the spirit of the
// simulated-GPU benches reporting modeled seconds — each work unit
// (partition resp. morsel) is drained serially and timed without thread
// contention, and the parallel wall is modeled as the schedule makespan at
// kWorkers workers: static pins partition w to worker w (max over
// partitions), morsel hands each next morsel to the earliest-free worker
// (greedy work stealing).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/morsel.h"
#include "exec/operator.h"
#include "sql/physical_planner.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

constexpr int kWorkers = 8;
constexpr int64_t kMorselRows = 4096;

storage::TablePtr MakeWorkloadTable(int64_t rows, bool skewed) {
  auto table = std::make_shared<storage::Table>(
      "fact", std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                          {"marker", exec::DataType::kFloat},
                                          {"a", exec::DataType::kFloat},
                                          {"b", exec::DataType::kFloat}});
  Random rng(42);
  const int64_t hot_begin = rows * 8 / 10;
  const int64_t hot_end = hot_begin + rows / 10;
  for (int64_t i = 0; i < rows; ++i) {
    // 10% of rows survive the filter in both workloads; only their placement
    // differs.
    bool hot = skewed ? (i >= hot_begin && i < hot_end) : (i % 10 == 0);
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Float(hot ? 1.0f : 0.0f),
                                  storage::Value::Float(rng.NextFloat(-2, 2)),
                                  storage::Value::Float(rng.NextFloat(-2, 2))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

/// Per-partition busy seconds of the static scheduler: each worker drains
/// its fixed partition plan. Measured serially (min of `reps`), so the
/// numbers are contention-free even on a small host.
Result<std::vector<double>> StaticPartitionCosts(sql::QueryEngine* engine,
                                                 const sql::LogicalOp& plan,
                                                 const sql::PlanAnalysis& analysis,
                                                 int reps, int64_t* rows_out) {
  sql::PhysicalPlanner planner(&plan, analysis, kWorkers, nullptr, nullptr);
  INDBML_RETURN_NOT_OK(planner.Prepare());
  std::vector<double> costs(static_cast<size_t>(planner.num_workers()), 1e100);
  *rows_out = 0;
  for (int rep = 0; rep < reps; ++rep) {
    int64_t rows = 0;
    for (int w = 0; w < planner.num_workers(); ++w) {
      INDBML_ASSIGN_OR_RETURN(auto root, planner.Instantiate(w));
      exec::ExecContext ctx;
      ctx.catalog = engine->catalog();
      ctx.worker_id = w;
      Stopwatch watch;
      INDBML_ASSIGN_OR_RETURN(auto result, exec::DrainOperator(root.get(), &ctx));
      costs[static_cast<size_t>(w)] =
          std::min(costs[static_cast<size_t>(w)], watch.ElapsedSeconds());
      rows += result.num_rows;
    }
    *rows_out = rows;
  }
  return costs;
}

/// Per-morsel busy seconds of the morsel scheduler: one worker plan drains
/// every morsel in claim order, timed individually (min of `reps` passes).
Result<std::vector<double>> MorselCosts(sql::QueryEngine* engine,
                                        const sql::LogicalOp& plan,
                                        const sql::PlanAnalysis& analysis,
                                        int reps, int64_t* rows_out) {
  sql::PhysicalPlanner planner(&plan, analysis, kWorkers, nullptr, nullptr,
                               nullptr, /*morsel_driven=*/true);
  INDBML_RETURN_NOT_OK(planner.Prepare());
  auto morsels = exec::MakeMorsels(*analysis.partitioned_table, kMorselRows);
  std::vector<double> costs(morsels.size(), 1e100);
  *rows_out = 0;
  for (int rep = 0; rep < reps; ++rep) {
    INDBML_ASSIGN_OR_RETURN(auto root, planner.Instantiate(0));
    exec::ExecContext ctx;
    ctx.catalog = engine->catalog();
    INDBML_RETURN_NOT_OK(root->Open(&ctx));
    int64_t rows = 0;
    for (size_t m = 0; m < morsels.size(); ++m) {
      ctx.morsel_begin = morsels[m].begin;
      ctx.morsel_end = morsels[m].end;
      ctx.morsel_index = static_cast<int64_t>(m);
      exec::QueryResult batch;
      batch.types = std::vector<exec::DataType>(root->output_types());
      Stopwatch watch;
      INDBML_RETURN_NOT_OK(root->Rewind(&ctx));
      INDBML_RETURN_NOT_OK(exec::DrainAppend(root.get(), &ctx, &batch));
      costs[m] = std::min(costs[m], watch.ElapsedSeconds());
      rows += batch.num_rows;
    }
    root->Close(&ctx);
    *rows_out = rows;
  }
  return costs;
}

/// Makespan of fixed assignment unit w -> worker w.
double StaticMakespan(const std::vector<double>& costs) {
  return *std::max_element(costs.begin(), costs.end());
}

/// Makespan of greedy work stealing: each next unit goes to the worker that
/// frees up first — exactly what pulling from the shared morsel cursor does.
double StealingMakespan(const std::vector<double>& costs, int workers) {
  std::vector<double> free_at(static_cast<size_t>(workers), 0.0);
  for (double c : costs) {
    *std::min_element(free_at.begin(), free_at.end()) += c;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t rows = scale.paper_scale ? 8000000 : 2000000;
  const int reps = 3;

  ReportTable table("ablation_scheduling",
                    {"workload", "scheduler", "modeled_wall",
                     "speedup_vs_static"});

  const std::string query =
      "SELECT f.id AS g, SUM(f.a * f.b + f.a) AS s, "
      "SUM(f.a * f.a - f.b) AS t, COUNT(*) AS c "
      "FROM fact f WHERE f.marker >= 0.5 GROUP BY f.id";

  for (bool skewed : {false, true}) {
    const char* workload = skewed ? "skewed" : "uniform";
    sql::QueryEngine engine;
    INDBML_CHECK(
        engine.catalog()->CreateTable(MakeWorkloadTable(rows, skewed)).ok());
    auto plan = engine.PlanQuery(query);
    INDBML_CHECK(plan.ok()) << plan.status().ToString();
    sql::Optimizer optimizer(engine.options().optimizer);
    sql::PlanAnalysis analysis = optimizer.Analyze(**plan);
    INDBML_CHECK(analysis.parallel_safe);

    int64_t static_rows = 0;
    int64_t morsel_rows = 0;
    auto static_costs =
        StaticPartitionCosts(&engine, **plan, analysis, reps, &static_rows);
    INDBML_CHECK(static_costs.ok()) << static_costs.status().ToString();
    auto morsel_costs =
        MorselCosts(&engine, **plan, analysis, reps, &morsel_rows);
    INDBML_CHECK(morsel_costs.ok()) << morsel_costs.status().ToString();
    INDBML_CHECK(static_rows == morsel_rows)
        << static_rows << " vs " << morsel_rows;

    double static_wall = StaticMakespan(*static_costs);
    double morsel_wall = StealingMakespan(*morsel_costs, kWorkers);
    double speedup = static_wall / morsel_wall;

    table.AddRow({workload, "static", FormatSeconds(static_wall), "1.00x"});
    table.AddRow({workload, "morsel", FormatSeconds(morsel_wall),
                  StrFormat("%.2fx", speedup)});
    std::printf(
        "[scheduling] %-8s rows=%lld  static %8.4fs  morsel %8.4fs  (%.2fx "
        "at %d workers)\n",
        workload, static_cast<long long>(static_rows), static_wall,
        morsel_wall, speedup, kWorkers);
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
