// Ablation of the native ModelJoin's vectorized inference (paper §5.3/5.4):
// sweeps the vector size (the batch each columnar→matrix conversion and GEMM
// processes) and compares the replicated-bias-matrix design against naive
// per-row bias addition. Small vectors pay per-call overheads; large vectors
// amortise them — the reason the engine's vector size (1024) is also the
// inference batch size (§6.1).

#include <algorithm>
#include <cstdio>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/config.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "mltosql/mltosql.h"
#include "modeljoin/modeljoin_operator.h"
#include "nn/model_meta.h"

namespace indbml::benchlib {
namespace {

/// Emits the iris feature columns in chunks of exactly `chunk_size` rows.
class FixedChunkSource final : public exec::Operator {
 public:
  FixedChunkSource(storage::TablePtr table, int64_t chunk_size)
      : table_(std::move(table)), chunk_size_(chunk_size) {
    for (int c = 0; c < table_->num_columns(); ++c) {
      types_.push_back(table_->fields()[static_cast<size_t>(c)].type);
      names_.push_back(table_->fields()[static_cast<size_t>(c)].name);
    }
  }

  const std::vector<exec::DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(exec::ExecContext*) override {
    cursor_ = 0;
    return Status::OK();
  }
  Status Next(exec::ExecContext*, exec::DataChunk* out, bool* eof) override {
    int64_t end = std::min(cursor_ + chunk_size_, table_->num_rows());
    for (int64_t r = cursor_; r < end; ++r) {
      for (int c = 0; c < table_->num_columns(); ++c) {
        out->column(c).Append(table_->column(c).GetValue(r));
      }
      ++out->size;
    }
    cursor_ = end;
    *eof = cursor_ >= table_->num_rows();
    return Status::OK();
  }

 private:
  storage::TablePtr table_;
  int64_t chunk_size_;
  int64_t cursor_ = 0;
  std::vector<exec::DataType> types_;
  std::vector<std::string> names_;
};

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t tuples = scale.paper_scale ? 100000 : 16000;
  const int64_t width = scale.paper_scale ? 128 : 64;

  auto fact = MakeIrisTable("fact", tuples);
  auto model_or = nn::MakeDenseBenchmarkModel(width, 4);
  INDBML_CHECK(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  auto model_table_or = framework.BuildModelTable();
  INDBML_CHECK(model_table_or.ok());
  storage::TablePtr model_table = std::move(model_table_or).ValueOrDie();

  auto cpu = device::MakeCpuDevice();
  auto gpu = device::MakeSimGpuDevice();
  ReportTable table("ablation_modeljoin_vectorsize",
                    {"device", "vector_size", "seconds", "tuples_per_second"});

  for (device::Device* dev : {cpu.get(), gpu.get()}) {
    for (int64_t vs : {64, 256, 1024, 4096}) {
      auto shared = std::make_shared<modeljoin::SharedModel>(
          nn::MetaOf(model, "m"), dev, /*num_partitions=*/1, static_cast<int>(vs));
      modeljoin::ModelJoinOperator op(
          std::make_unique<FixedChunkSource>(fact, vs), shared, model_table,
          {1, 2, 3, 4}, {"prediction"}, /*partition=*/0);
      exec::ExecContext ctx;
      dev->ResetStats();
      Stopwatch watch;
      auto result = exec::DrainOperator(&op, &ctx);
      double seconds = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "[modeljoin] vs=%lld failed: %s\n",
                     static_cast<long long>(vs), result.status().ToString().c_str());
        return 1;
      }
      if (dev->is_gpu()) {
        device::DeviceStats stats = dev->stats();
        seconds = std::max(seconds - stats.real_seconds + stats.modeled_seconds,
                           stats.modeled_seconds);
      }
      INDBML_CHECK(result->num_rows == tuples);
      table.AddRow({dev->name(), std::to_string(vs), FormatSeconds(seconds),
                    StrFormat("%.0f", static_cast<double>(tuples) / seconds)});
      std::printf("[modeljoin] %-7s vectorsize=%-5lld %8.4fs  (%.0f tuples/s)\n",
                  dev->name(), static_cast<long long>(vs), seconds,
                  static_cast<double>(tuples) / seconds);
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
