// Google-benchmark microbenchmarks of the engine's and miniblas' inner
// kernels: GEMM, activations, expression evaluation, hash join and the two
// aggregation strategies. These are the building blocks whose relative
// costs explain the figure-level results.

#include <benchmark/benchmark.h>

#include "benchlib/workloads.h"
#include "common/config.h"
#include "exec/aggregate.h"
#include "exec/basic_operators.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "nn/blas.h"
#include "nn/model.h"
#include "sql/query_engine.h"

namespace indbml {
namespace {

void BM_SgemmSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n * n), 1.5f);
  std::vector<float> b(static_cast<size_t>(n * n), 0.5f);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::SgemmTight(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmSquare)->Arg(32)->Arg(128)->Arg(256);

void BM_SgemmVectorBatch(benchmark::State& state) {
  // The ModelJoin inner shape: [units x in] * [in x vectorsize].
  const int64_t units = state.range(0);
  const int64_t vs = kDefaultVectorSize;
  std::vector<float> w(static_cast<size_t>(units * units), 0.01f);
  std::vector<float> x(static_cast<size_t>(units * vs), 1.0f);
  std::vector<float> z(static_cast<size_t>(units * vs), 0.0f);
  for (auto _ : state) {
    blas::SgemmTight(false, false, units, vs, units, 1.0f, w.data(), x.data(), 0.0f,
                     z.data());
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * units * units * vs);
}
BENCHMARK(BM_SgemmVectorBatch)->Arg(32)->Arg(128)->Arg(512);

void BM_Activations(benchmark::State& state) {
  std::vector<float> x(65536);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.001f * static_cast<float>(i % 200) - 0.1f;
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0:
        blas::VsRelu(static_cast<int64_t>(x.size()), x.data());
        break;
      case 1:
        blas::VsSigmoid(static_cast<int64_t>(x.size()), x.data());
        break;
      case 2:
        blas::VsTanh(static_cast<int64_t>(x.size()), x.data());
        break;
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_Activations)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpressionEval(benchmark::State& state) {
  exec::DataChunk chunk;
  chunk.Reset({exec::DataType::kFloat, exec::DataType::kFloat});
  chunk.SetCardinality(kDefaultVectorSize);
  for (int64_t i = 0; i < kDefaultVectorSize; ++i) {
    chunk.column(0).floats()[i] = static_cast<float>(i) * 0.01f;
    chunk.column(1).floats()[i] = 2.0f;
  }
  // sigmoid(a * b + 0.5)
  auto expr = exec::MakeFunction(
      exec::ScalarFn::kSigmoid,
      [&] {
        std::vector<exec::ExprPtr> args;
        args.push_back(exec::MakeBinary(
            exec::BinaryOp::kAdd,
            exec::MakeBinary(exec::BinaryOp::kMul,
                             exec::MakeColumnRef(0, exec::DataType::kFloat),
                             exec::MakeColumnRef(1, exec::DataType::kFloat)),
            exec::MakeConstant(exec::Value::Float(0.5f))));
        return args;
      }());
  exec::Vector out(exec::DataType::kFloat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::EvaluateExpr(*expr, chunk, &out));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultVectorSize);
}
BENCHMARK(BM_ExpressionEval);

void BM_SqlLayerForward(benchmark::State& state) {
  // One dense layer-forward query over a pre-built engine (join + group by),
  // the inner building block of ML-To-SQL.
  const int64_t tuples = 4096;
  sql::QueryEngine engine;
  engine.catalog()->CreateOrReplaceTable(benchlib::MakeIrisTable("fact", tuples));
  for (auto _ : state) {
    auto result = engine.ExecuteQuery(
        "SELECT f.id, t.tag_sum FROM fact f, "
        "(SELECT id AS iid, SUM(sepal_length * sepal_width) AS tag_sum FROM fact "
        "GROUP BY id) AS t WHERE f.id = t.iid");
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_SqlLayerForward);

}  // namespace
}  // namespace indbml

BENCHMARK_MAIN();
