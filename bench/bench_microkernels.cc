// Google-benchmark microbenchmarks of the engine's and miniblas' inner
// kernels: GEMM, activations, expression evaluation, hash join and the two
// aggregation strategies. These are the building blocks whose relative
// costs explain the figure-level results.
//
// `--roofline` switches to a scalar-vs-SIMD roofline report instead: every
// vectorized kernel timed in both modes (simd::SetEnabled), with achieved
// GB/s and GFLOP/s per mode and the speedup, printed as a table, mirrored
// to $RESULTS_DIR/bench_microkernels_roofline.csv, and — with `--json` —
// dumped as JSON next to it.

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/config.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/basic_operators.h"
#include "exec/expression.h"
#include "exec/gather.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "nn/blas.h"
#include "nn/model.h"
#include "sql/query_engine.h"

namespace indbml {
namespace {

void BM_SgemmSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n * n), 1.5f);
  std::vector<float> b(static_cast<size_t>(n * n), 0.5f);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::SgemmTight(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SgemmSquare)->Arg(32)->Arg(128)->Arg(256);

void BM_SgemmVectorBatch(benchmark::State& state) {
  // The ModelJoin inner shape: [units x in] * [in x vectorsize].
  const int64_t units = state.range(0);
  const int64_t vs = kDefaultVectorSize;
  std::vector<float> w(static_cast<size_t>(units * units), 0.01f);
  std::vector<float> x(static_cast<size_t>(units * vs), 1.0f);
  std::vector<float> z(static_cast<size_t>(units * vs), 0.0f);
  for (auto _ : state) {
    blas::SgemmTight(false, false, units, vs, units, 1.0f, w.data(), x.data(), 0.0f,
                     z.data());
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * units * units * vs);
}
BENCHMARK(BM_SgemmVectorBatch)->Arg(32)->Arg(128)->Arg(512);

void BM_Activations(benchmark::State& state) {
  std::vector<float> x(65536);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.001f * static_cast<float>(i % 200) - 0.1f;
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0:
        blas::VsRelu(static_cast<int64_t>(x.size()), x.data());
        break;
      case 1:
        blas::VsSigmoid(static_cast<int64_t>(x.size()), x.data());
        break;
      case 2:
        blas::VsTanh(static_cast<int64_t>(x.size()), x.data());
        break;
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_Activations)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpressionEval(benchmark::State& state) {
  exec::DataChunk chunk;
  chunk.Reset({exec::DataType::kFloat, exec::DataType::kFloat});
  chunk.SetCardinality(kDefaultVectorSize);
  for (int64_t i = 0; i < kDefaultVectorSize; ++i) {
    chunk.column(0).floats()[i] = static_cast<float>(i) * 0.01f;
    chunk.column(1).floats()[i] = 2.0f;
  }
  // sigmoid(a * b + 0.5)
  auto expr = exec::MakeFunction(
      exec::ScalarFn::kSigmoid,
      [&] {
        std::vector<exec::ExprPtr> args;
        args.push_back(exec::MakeBinary(
            exec::BinaryOp::kAdd,
            exec::MakeBinary(exec::BinaryOp::kMul,
                             exec::MakeColumnRef(0, exec::DataType::kFloat),
                             exec::MakeColumnRef(1, exec::DataType::kFloat)),
            exec::MakeConstant(exec::Value::Float(0.5f))));
        return args;
      }());
  exec::Vector out(exec::DataType::kFloat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::EvaluateExpr(*expr, chunk, &out));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultVectorSize);
}
BENCHMARK(BM_ExpressionEval);

void BM_SqlLayerForward(benchmark::State& state) {
  // One dense layer-forward query over a pre-built engine (join + group by),
  // the inner building block of ML-To-SQL.
  const int64_t tuples = 4096;
  sql::QueryEngine engine;
  engine.catalog()->CreateOrReplaceTable(benchlib::MakeIrisTable("fact", tuples));
  for (auto _ : state) {
    auto result = engine.ExecuteQuery(
        "SELECT f.id, t.tag_sum FROM fact f, "
        "(SELECT id AS iid, SUM(sepal_length * sepal_width) AS tag_sum FROM fact "
        "GROUP BY id) AS t WHERE f.id = t.iid");
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_SqlLayerForward);

// ---------------------------------------------------------------------------
// Roofline report (--roofline [--json])

/// One kernel in the roofline sweep: `run` executes the kernel once over its
/// whole working set; `flops`/`bytes` are the per-run totals used to derive
/// GFLOP/s (arithmetic ops for non-FP kernels) and GB/s.
struct RooflineKernel {
  std::string name;
  double flops;
  double bytes;
  std::function<void()> run;
};

/// Median-of-repetitions seconds per run: warm up, then time batches until
/// the budget is spent and keep the fastest batch (steadiest estimate on a
/// noisy machine).
double TimeKernel(const std::function<void()>& run) {
  using clock = std::chrono::steady_clock;
  run();  // warm-up / page-in
  double best = 1e30;
  const double budget_s = 0.15;
  auto start_all = clock::now();
  int reps = 1;
  for (;;) {
    auto t0 = clock::now();
    for (int r = 0; r < reps; ++r) run();
    auto t1 = clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count() / reps;
    if (secs < best) best = secs;
    if (std::chrono::duration<double>(t1 - start_all).count() > budget_s) break;
    if (secs * reps < 0.01) reps *= 2;  // amortise timer overhead
  }
  return best;
}

int RunRoofline(bool emit_json) {
  const int64_t kVec = 1 << 16;
  const int64_t kGemmN = 256;
  Random rng(17);

  std::vector<float> fa(static_cast<size_t>(kVec)), fb(fa.size()), fc(fa.size());
  for (auto& v : fa) v = rng.NextFloat(-8, 8);
  for (auto& v : fb) v = rng.NextFloat(-8, 8);
  std::vector<float> ga(static_cast<size_t>(kGemmN * kGemmN)), gb(ga.size()),
      gc(ga.size());
  for (auto& v : ga) v = rng.NextFloat(-1, 1);
  for (auto& v : gb) v = rng.NextFloat(-1, 1);
  std::vector<int64_t> ia(static_cast<size_t>(kVec));
  for (auto& v : ia) v = static_cast<int64_t>(rng.NextUint64(1000));
  std::vector<uint8_t> mask(static_cast<size_t>(kVec));
  std::vector<int32_t> idx(static_cast<size_t>(kVec));
  for (int64_t i = 0; i < kVec; ++i) {
    idx[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(kVec)));
  }
  auto sel = std::make_shared<const exec::SelectionVector>(idx);
  exec::Vector gather_src(exec::DataType::kFloat);
  gather_src.Resize(kVec);
  std::memcpy(gather_src.floats(), fa.data(), fa.size() * sizeof(float));
  exec::Vector gather_in = gather_src.WithSelection(sel);
  std::vector<int32_t> passing;
  passing.reserve(static_cast<size_t>(kVec));

  const double vec_f = static_cast<double>(kVec);
  const double gemm_flops = 2.0 * kGemmN * kGemmN * kGemmN;
  std::vector<RooflineKernel> kernels;
  kernels.push_back({"sgemm_256", gemm_flops, 4.0 * 4 * kGemmN * kGemmN, [&] {
                       blas::SgemmTight(false, false, kGemmN, kGemmN, kGemmN,
                                        1.0f, ga.data(), gb.data(), 0.0f,
                                        gc.data());
                     }});
  kernels.push_back({"vs_add", vec_f, 12.0 * vec_f, [&] {
                       blas::VsAdd(kVec, fa.data(), fb.data(), fc.data());
                     }});
  kernels.push_back({"vs_mul", vec_f, 12.0 * vec_f, [&] {
                       blas::VsMul(kVec, fa.data(), fb.data(), fc.data());
                     }});
  kernels.push_back({"saxpy", 2.0 * vec_f, 12.0 * vec_f, [&] {
                       blas::Saxpy(kVec, 1.0009f, fa.data(), fc.data());
                     }});
  kernels.push_back({"vs_relu", vec_f, 8.0 * vec_f, [&] {
                       std::memcpy(fc.data(), fa.data(),
                                   fa.size() * sizeof(float));
                       blas::VsRelu(kVec, fc.data());
                     }});
  kernels.push_back({"cmp_const_f32", vec_f, 6.0 * vec_f, [&] {
                       std::memset(mask.data(), 1, mask.size());
                       exec::AndMaskCompareConstFloat(exec::BinaryOp::kGt,
                                                      fa.data(), 0.0f, kVec,
                                                      mask.data());
                     }});
  kernels.push_back({"cmp_const_i64", vec_f, 10.0 * vec_f, [&] {
                       std::memset(mask.data(), 1, mask.size());
                       exec::AndMaskCompareConstInt64(exec::BinaryOp::kLt,
                                                      ia.data(), 500, kVec,
                                                      mask.data());
                     }});
  kernels.push_back({"mask_to_indices", vec_f, 6.0 * vec_f, [&] {
                       passing.clear();
                       exec::AppendMaskIndices(mask.data(), kVec, 0, &passing);
                     }});
  kernels.push_back({"gather_f32_sel", vec_f, 12.0 * vec_f, [&] {
                       exec::GatherToFloat(gather_in, fc.data());
                     }});

  benchlib::ReportTable table(
      "bench_microkernels_roofline",
      {"kernel", "scalar_s", "simd_s", "scalar_gflops", "simd_gflops",
       "scalar_gbps", "simd_gbps", "speedup"});
  struct Row {
    std::string kernel;
    double scalar_s, simd_s, scalar_gflops, simd_gflops, scalar_gbps,
        simd_gbps, speedup;
  };
  std::vector<Row> rows;
  for (const RooflineKernel& k : kernels) {
    double scalar_s, simd_s;
    {
      simd::ScopedEnable off(false);
      scalar_s = TimeKernel(k.run);
    }
    {
      simd::ScopedEnable on(true);
      simd_s = TimeKernel(k.run);
    }
    Row row{k.name,
            scalar_s,
            simd_s,
            k.flops / scalar_s / 1e9,
            k.flops / simd_s / 1e9,
            k.bytes / scalar_s / 1e9,
            k.bytes / simd_s / 1e9,
            scalar_s / simd_s};
    rows.push_back(row);
    table.AddRow({row.kernel, StrFormat("%.3g", row.scalar_s),
                  StrFormat("%.3g", row.simd_s),
                  StrFormat("%.2f", row.scalar_gflops),
                  StrFormat("%.2f", row.simd_gflops),
                  StrFormat("%.2f", row.scalar_gbps),
                  StrFormat("%.2f", row.simd_gbps),
                  StrFormat("%.2fx", row.speedup)});
  }
  std::printf("simd backend: %s (compiled %s, runtime toggle via "
              "simd::SetEnabled)\n",
              simd::kBackend, simd::kCompiled ? "in" : "out");
  table.Finish();

  if (emit_json) {
    const char* dir = std::getenv("RESULTS_DIR");
    std::string results_dir = dir != nullptr ? dir : "results";
    ::mkdir(results_dir.c_str(), 0755);
    std::string path = results_dir + "/bench_microkernels_roofline.json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"backend\": \"%s\",\n  \"kernels\": [\n",
                 simd::kBackend);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"kernel\": \"%s\", \"scalar_s\": %.6g, \"simd_s\": %.6g, "
          "\"scalar_gflops\": %.4g, \"simd_gflops\": %.4g, "
          "\"scalar_gbps\": %.4g, \"simd_gbps\": %.4g, \"speedup\": %.4g}%s\n",
          r.kernel.c_str(), r.scalar_s, r.simd_s, r.scalar_gflops,
          r.simd_gflops, r.scalar_gbps, r.simd_gbps, r.speedup,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(json: %s)\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace indbml

int main(int argc, char** argv) {
  bool roofline = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--roofline") == 0) roofline = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (roofline) return indbml::RunRoofline(json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
