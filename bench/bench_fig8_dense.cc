// Reproduces Figure 8: model-inference runtimes for dense-layer networks.
//
// Paper setup (§6.1): the Iris dataset replicated to varying fact-table
// sizes; dense networks with width in {32,128,512} and depth in {2,4,8};
// eight approaches. Default sweeps are CI-sized; REPRO_SCALE=paper restores
// the paper's grid (see DESIGN.md §4).

#include <cstdio>

#include "benchlib/approaches.h"
#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  ReportTable table("fig8_dense_runtime",
                    {"model_width", "model_depth", "fact_tuples", "approach",
                     "seconds", "wall_seconds", "rows"});

  for (int64_t width : scale.dense_widths) {
    for (int64_t depth : scale.dense_depths) {
      sql::QueryEngine engine;
      auto model_or = nn::MakeDenseBenchmarkModel(width, depth);
      INDBML_CHECK(model_or.ok()) << model_or.status().ToString();
      nn::Model model = std::move(model_or).ValueOrDie();

      for (int64_t tuples : scale.fact_sizes) {
        engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));
        auto context_or = PrepareApproachContext(
            &engine, &model, "bench_model", "fact",
            {"sepal_length", "sepal_width", "petal_length", "petal_width"});
        INDBML_CHECK(context_or.ok()) << context_or.status().ToString();
        ApproachContext context = std::move(context_or).ValueOrDie();

        for (Approach approach : AllApproaches()) {
          if (approach == Approach::kMlToSql && scale.mltosql_row_budget > 0 &&
              tuples * width * (depth + 1) > scale.mltosql_row_budget) {
            std::printf("[fig8] skipping ML-To-SQL for w=%lld d=%lld n=%lld "
                        "(row budget; REPRO_SCALE=paper removes the cap)\n",
                        static_cast<long long>(width), static_cast<long long>(depth),
                        static_cast<long long>(tuples));
            continue;
          }
          auto m = RunApproach(approach, context);
          if (!m.ok()) {
            std::fprintf(stderr, "[fig8] %s failed: %s\n", ApproachName(approach),
                         m.status().ToString().c_str());
            return 1;
          }
          table.AddRow({std::to_string(width), std::to_string(depth),
                        std::to_string(tuples), ApproachName(approach),
                        FormatSeconds(m->adjusted_seconds),
                        FormatSeconds(m->wall_seconds), std::to_string(m->rows)});
          std::printf("[fig8] w=%-4lld d=%lld n=%-7lld %-14s %10.4fs\n",
                      static_cast<long long>(width), static_cast<long long>(depth),
                      static_cast<long long>(tuples), ApproachName(approach),
                      m->adjusted_seconds);
          std::fflush(stdout);
        }
      }
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
