// Validates the structural cost model (paper §7 future work: "The cost for
// inference could ... be based on an investigation of the model structure,
// as our evaluation showed that costs increase linearly with model size").
//
// One probe measurement per approach calibrates the coefficients; the bench
// then reports predicted vs measured runtimes for other model sizes and
// fact sizes.

#include <cstdio>

#include "benchlib/approaches.h"
#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "nn/cost_model.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t probe_tuples = scale.paper_scale ? 50000 : 4000;
  std::vector<int64_t> eval_tuples =
      scale.paper_scale ? std::vector<int64_t>{100000, 200000}
                        : std::vector<int64_t>{8000, 16000};
  std::vector<std::pair<int64_t, int64_t>> shapes = {{16, 2}, {32, 2}, {64, 4}};

  std::vector<Approach> approaches = {Approach::kModelJoinCpu, Approach::kCApiCpu,
                                      Approach::kMlToSql};

  ReportTable table("cost_model_validation",
                    {"approach", "model", "tuples", "predicted_s", "measured_s",
                     "ratio"});

  for (Approach approach : approaches) {
    // Calibrate on the smallest shape.
    nn::CostCoefficients coeff;
    bool calibrated = false;
    for (auto [width, depth] : shapes) {
      auto model_or = nn::MakeDenseBenchmarkModel(width, depth);
      INDBML_CHECK(model_or.ok());
      nn::Model model = std::move(model_or).ValueOrDie();
      nn::CostEstimate estimate = nn::EstimateCost(model);

      for (int64_t tuples : eval_tuples) {
        if (approach == Approach::kMlToSql && scale.mltosql_row_budget > 0 &&
            tuples * width * (depth + 1) > scale.mltosql_row_budget) {
          continue;
        }
        sql::QueryEngine engine;
        engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));
        auto ctx_or = PrepareApproachContext(
            &engine, &model, "m", "fact",
            {"sepal_length", "sepal_width", "petal_length", "petal_width"});
        INDBML_CHECK(ctx_or.ok());
        ApproachContext context = std::move(ctx_or).ValueOrDie();

        if (!calibrated) {
          // One probe run on a reduced fact size calibrates the model.
          engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", probe_tuples));
          auto probe = RunApproach(approach, context);
          INDBML_CHECK(probe.ok()) << probe.status().ToString();
          coeff = nn::CalibrateFromMeasurement(estimate, probe_tuples,
                                               probe->adjusted_seconds,
                                               approach == Approach::kMlToSql);
          calibrated = true;
          engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));
        }

        auto m = RunApproach(approach, context);
        if (!m.ok()) {
          std::fprintf(stderr, "[cost] %s failed: %s\n", ApproachName(approach),
                       m.status().ToString().c_str());
          return 1;
        }
        double predicted = nn::PredictSeconds(estimate, coeff, tuples);
        double ratio = predicted / std::max(1e-9, m->adjusted_seconds);
        table.AddRow({ApproachName(approach), model.ToString(),
                      std::to_string(tuples), FormatSeconds(predicted),
                      FormatSeconds(m->adjusted_seconds), indbml::StrFormat("%.2f", ratio)});
        std::printf("[cost] %-14s %-16s n=%-7lld pred=%8.4fs meas=%8.4fs (%.2fx)\n",
                    ApproachName(approach), model.ToString().c_str(),
                    static_cast<long long>(tuples), predicted, m->adjusted_seconds,
                    ratio);
        std::fflush(stdout);
      }
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
