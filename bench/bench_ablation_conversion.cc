// Ablation of the storage→inference conversion layer: what it costs to move
// a batch of columnar values into the dense float matrix a model kernel
// consumes (the paper's conversion overhead between the relational engine
// and the ML runtime, §6).
//
// Two tables:
//  - "conversion": the columnar→matrix pack in isolation. "boxed" is the
//    engine's historical per-cell path (Vector::GetValue(r) → Value →
//    AsDouble), "typed" is the gather-kernel path (exec/gather.h) the
//    ModelJoin and C-API operators now use — each timed over flat vectors
//    and over selection views (filter survivors).
//  - "scan_mode": a full scan→filter→project query with the zero-copy scan
//    on vs off (QueryEngine::Options::zero_copy_scan), isolating what
//    view + selection-vector emission saves end to end.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/buffer.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/gather.h"
#include "exec/vector.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

constexpr int kWidth = 8;  // model input columns per batch row

/// `kWidth` float columns of `rows` random values; with `with_selection`
/// each is a view keeping every other base row (a 50% filter's output).
std::vector<exec::Vector> MakeColumns(int64_t rows, bool with_selection,
                                      Random* rng) {
  const int64_t base_rows = with_selection ? rows * 2 : rows;
  exec::SelectionPtr sel;
  if (with_selection) {
    std::vector<int32_t> keep;
    keep.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) keep.push_back(static_cast<int32_t>(r * 2));
    sel = std::make_shared<const exec::SelectionVector>(std::move(keep));
  }
  std::vector<exec::Vector> cols;
  for (int c = 0; c < kWidth; ++c) {
    BufferPtr buf = Buffer::New(base_rows * static_cast<int64_t>(sizeof(float)));
    auto* data = reinterpret_cast<float*>(buf->data());
    for (int64_t r = 0; r < base_rows; ++r) data[r] = rng->NextFloat(-2, 2);
    exec::Vector v =
        exec::Vector::View(exec::DataType::kFloat, std::move(buf), 0, base_rows);
    cols.push_back(sel != nullptr ? v.WithSelection(sel) : std::move(v));
  }
  return cols;
}

/// Row-major matrix pack through the per-cell Value boxing the inference
/// operators used before the gather kernels (min seconds over `reps`).
double TimeBoxedPack(const std::vector<exec::Vector>& cols, float* dst,
                     int reps) {
  const int64_t rows = cols[0].size();
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (int64_t r = 0; r < rows; ++r) {
      for (int c = 0; c < kWidth; ++c) {
        dst[r * kWidth + c] =
            static_cast<float>(cols[static_cast<size_t>(c)].GetValue(r).AsDouble());
      }
    }
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// The same pack through the typed strided gather kernel.
double TimeTypedPack(const std::vector<exec::Vector>& cols, float* dst,
                     int reps) {
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (int c = 0; c < kWidth; ++c) {
      exec::GatherToFloatStrided(cols[static_cast<size_t>(c)], dst + c, kWidth);
    }
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

storage::TablePtr MakeFactTable(int64_t rows) {
  auto table = std::make_shared<storage::Table>(
      "fact", std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                          {"a", exec::DataType::kFloat},
                                          {"b", exec::DataType::kFloat}});
  Random rng(42);
  table->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Float(rng.NextFloat(-2, 2)),
                                  storage::Value::Float(rng.NextFloat(-2, 2))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

/// Serial wall seconds of a selection-producing query under the given scan
/// mode (min over `reps`; result row count returned for cross-checking).
double TimeQuery(bool zero_copy, int64_t rows, int reps, int64_t* rows_out) {
  sql::QueryEngine::Options options;
  options.parallel = false;
  options.zero_copy_scan = zero_copy;
  sql::QueryEngine engine(options);
  INDBML_CHECK(engine.catalog()->CreateTable(MakeFactTable(rows)).ok());
  const std::string query =
      "SELECT f.id, f.a * 2.0 + f.b AS e FROM fact f WHERE f.a >= 0.0";
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    auto result = engine.ExecuteQuery(query);
    INDBML_CHECK(result.ok()) << result.status().ToString();
    best = std::min(best, watch.ElapsedSeconds());
    *rows_out = result->num_rows;
  }
  return best;
}

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  const int64_t pack_rows = scale.paper_scale ? 1000000 : 200000;
  const int64_t query_rows = scale.paper_scale ? 8000000 : 2000000;
  const int reps = 5;

  ReportTable conversion("ablation_conversion",
                         {"layout", "path", "seconds", "speedup_vs_boxed"});
  Random rng(7);
  std::vector<float> matrix(static_cast<size_t>(pack_rows) * kWidth);
  for (bool with_selection : {false, true}) {
    const char* layout = with_selection ? "selection" : "flat";
    auto cols = MakeColumns(pack_rows, with_selection, &rng);
    double boxed = TimeBoxedPack(cols, matrix.data(), reps);
    double typed = TimeTypedPack(cols, matrix.data(), reps);
    conversion.AddRow({layout, "boxed", FormatSeconds(boxed), "1.00x"});
    conversion.AddRow({layout, "typed", FormatSeconds(typed),
                       StrFormat("%.2fx", boxed / typed)});
    std::printf("[conversion] %-9s rows=%lld  boxed %8.4fs  typed %8.4fs  (%.2fx)\n",
                layout, static_cast<long long>(pack_rows), boxed, typed,
                boxed / typed);
  }
  conversion.Finish();

  ReportTable scan_mode("ablation_scan_mode",
                        {"scan", "seconds", "speedup_vs_materialized"});
  int64_t rows_legacy = 0;
  int64_t rows_zero_copy = 0;
  double legacy = TimeQuery(/*zero_copy=*/false, query_rows, reps, &rows_legacy);
  double zero_copy = TimeQuery(/*zero_copy=*/true, query_rows, reps, &rows_zero_copy);
  INDBML_CHECK(rows_legacy == rows_zero_copy)
      << rows_legacy << " vs " << rows_zero_copy;
  scan_mode.AddRow({"materialized", FormatSeconds(legacy), "1.00x"});
  scan_mode.AddRow({"zero_copy", FormatSeconds(zero_copy),
                    StrFormat("%.2fx", legacy / zero_copy)});
  std::printf("[scan_mode] rows=%lld survivors=%lld  materialized %8.4fs  "
              "zero-copy %8.4fs  (%.2fx)\n",
              static_cast<long long>(query_rows),
              static_cast<long long>(rows_zero_copy), legacy, zero_copy,
              legacy / zero_copy);
  scan_mode.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
