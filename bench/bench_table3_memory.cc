// Reproduces Table 3: peak memory for model inference.
//
// Paper setup: 100K tuples; models Dense(32,4), Dense(128,4), Dense(512,4),
// LSTM(128); approaches ModelJoin, TF(C-API), TF(Python) and ML-To-SQL.
// The reported number is the peak of tracked engine allocations during the
// run (client-side memory is added for the external approach); process RSS
// is printed alongside as a cross-check. REPRO_SCALE=paper restores the
// paper's sizes; the default is CI-sized.

#include <cstdio>

#include "benchlib/approaches.h"
#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

struct ModelConfig {
  const char* label;
  bool lstm;
  int64_t width;
  int64_t depth;  // dense only
};

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  std::vector<ModelConfig> configs;
  if (scale.paper_scale) {
    configs = {{"Dense(32,4)", false, 32, 4},
               {"Dense(128,4)", false, 128, 4},
               {"Dense(512,4)", false, 512, 4},
               {"LSTM(128)", true, 128, 0}};
  } else {
    configs = {{"Dense(32,4)", false, 32, 4},
               {"Dense(128,4)", false, 128, 4},
               {"LSTM(64)", true, 64, 0}};
  }
  const int64_t tuples = scale.memory_fact_size;

  // Table 3 compares these four approaches (the UDF is "a wrapper around
  // the Tensorflow variant ... similar memory requirements", §6.2.2).
  std::vector<Approach> approaches = {Approach::kModelJoinCpu, Approach::kCApiCpu,
                                      Approach::kExternalCpu, Approach::kMlToSql};

  ReportTable table("table3_peak_memory",
                    {"model", "approach", "peak_bytes", "peak_human", "rss_bytes"});

  for (const ModelConfig& config : configs) {
    sql::QueryEngine engine;
    Result<nn::Model> model_or =
        config.lstm ? nn::MakeLstmBenchmarkModel(config.width)
                    : nn::MakeDenseBenchmarkModel(config.width, config.depth);
    INDBML_CHECK(model_or.ok()) << model_or.status().ToString();
    nn::Model model = std::move(model_or).ValueOrDie();

    std::vector<std::string> input_columns;
    if (config.lstm) {
      engine.catalog()->CreateOrReplaceTable(MakeSinusTable("fact", tuples, 3));
      input_columns = {"x0", "x1", "x2"};
    } else {
      engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));
      input_columns = {"sepal_length", "sepal_width", "petal_length", "petal_width"};
    }
    auto context_or =
        PrepareApproachContext(&engine, &model, "bench_model", "fact", input_columns);
    INDBML_CHECK(context_or.ok()) << context_or.status().ToString();
    ApproachContext context = std::move(context_or).ValueOrDie();

    for (Approach approach : approaches) {
      if (approach == Approach::kMlToSql && scale.mltosql_row_budget > 0 &&
          tuples * config.width * (config.depth + 1) > scale.mltosql_row_budget) {
        std::printf("[table3] skipping ML-To-SQL for %s (row budget)\n",
                    config.label);
        continue;
      }
      auto m = RunApproach(approach, context);
      if (!m.ok()) {
        std::fprintf(stderr, "[table3] %s failed: %s\n", ApproachName(approach),
                     m.status().ToString().c_str());
        return 1;
      }
      table.AddRow({config.label, ApproachName(approach),
                    std::to_string(m->peak_delta_bytes),
                    FormatBytes(m->peak_delta_bytes),
                    std::to_string(ReadProcessRssBytes())});
      std::printf("[table3] %-13s %-14s peak=%s\n", config.label,
                  ApproachName(approach), FormatBytes(m->peak_delta_bytes).c_str());
      std::fflush(stdout);
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
