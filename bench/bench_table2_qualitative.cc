// Reproduces Table 2: qualitative comparison of ML inference approaches.
//
// Performance and memory grades are *derived from measurements* on a small
// and a large model (relative to the best approach per scenario);
// portability and generalizability are the architectural attributes the
// paper assigns (§6.3): SQL generation is portable but limited to the
// implemented layer types; runtime-based approaches are generic but drag in
// external dependencies.

#include <cstdio>
#include <map>

#include "benchlib/approaches.h"
#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

/// The five columns of the paper's Table 2.
enum class Column { kMlToSql, kNativeModelJoin, kTfPython, kTfCApi, kUdf };

const char* ColumnName(Column c) {
  switch (c) {
    case Column::kMlToSql:
      return "ML-To-SQL";
    case Column::kNativeModelJoin:
      return "Native ModelJoin";
    case Column::kTfPython:
      return "TF(Python)";
    case Column::kTfCApi:
      return "TF(C-API)";
    case Column::kUdf:
      return "UDF";
  }
  return "?";
}

Approach RepresentativeApproach(Column c) {
  switch (c) {
    case Column::kMlToSql:
      return Approach::kMlToSql;
    case Column::kNativeModelJoin:
      return Approach::kModelJoinCpu;
    case Column::kTfPython:
      return Approach::kExternalCpu;
    case Column::kTfCApi:
      return Approach::kCApiCpu;
    case Column::kUdf:
      return Approach::kUdf;
  }
  return Approach::kMlToSql;
}

/// Grades a measured value relative to the best (smallest) in its row.
const char* Grade(double value, double best) {
  if (value <= best * 3.0) return "Good";
  if (value <= best * 15.0) return "Medium";
  return "Bad";
}

int Run() {
  std::vector<Column> columns = {Column::kMlToSql, Column::kNativeModelJoin,
                                 Column::kTfPython, Column::kTfCApi, Column::kUdf};

  // Measure a small and a large dense model.
  std::map<Column, double> small_seconds;
  std::map<Column, double> large_seconds;
  std::map<Column, double> memory_bytes;

  auto measure = [&](int64_t width, int64_t depth, int64_t tuples,
                     std::map<Column, double>* seconds, bool record_memory) -> int {
    sql::QueryEngine engine;
    engine.catalog()->CreateOrReplaceTable(MakeIrisTable("fact", tuples));
    auto model_or = nn::MakeDenseBenchmarkModel(width, depth);
    INDBML_CHECK(model_or.ok());
    nn::Model model = std::move(model_or).ValueOrDie();
    auto ctx_or = PrepareApproachContext(
        &engine, &model, "m", "fact",
        {"sepal_length", "sepal_width", "petal_length", "petal_width"});
    INDBML_CHECK(ctx_or.ok());
    ApproachContext context = std::move(ctx_or).ValueOrDie();
    for (Column c : columns) {
      auto m = RunApproach(RepresentativeApproach(c), context);
      if (!m.ok()) {
        std::fprintf(stderr, "[table2] %s failed: %s\n", ColumnName(c),
                     m.status().ToString().c_str());
        return 1;
      }
      (*seconds)[c] = m->adjusted_seconds;
      if (record_memory) memory_bytes[c] = static_cast<double>(m->peak_delta_bytes);
    }
    return 0;
  };

  if (measure(8, 2, 4000, &small_seconds, false) != 0) return 1;
  if (measure(64, 4, 8000, &large_seconds, true) != 0) return 1;

  double best_small = 1e100;
  double best_large = 1e100;
  double best_memory = 1e100;
  for (Column c : columns) {
    best_small = std::min(best_small, small_seconds[c]);
    best_large = std::min(best_large, large_seconds[c]);
    best_memory = std::min(best_memory, memory_bytes[c]);
  }

  ReportTable table("table2_qualitative",
                    {"criterion", "ML-To-SQL", "Native ModelJoin", "TF(Python)",
                     "TF(C-API)", "UDF"});
  auto row = [&](const char* criterion,
                 const std::function<std::string(Column)>& cell) {
    std::vector<std::string> values{criterion};
    for (Column c : columns) values.push_back(cell(c));
    table.AddRow(std::move(values));
  };
  row("Performance (Small Models)",
      [&](Column c) { return Grade(small_seconds[c], best_small); });
  row("Performance (Large Models)",
      [&](Column c) { return Grade(large_seconds[c], best_large); });
  row("Memory Consumption",
      [&](Column c) { return Grade(memory_bytes[c], best_memory); });
  // Architectural attributes (paper §6.3): plain SQL runs anywhere; native
  // operators and C-API integrations require engine changes; UDFs need UDF
  // support only. Runtime-backed approaches accept arbitrary model types;
  // reimplementations cover only the implemented layers.
  row("Portability", [](Column c) {
    switch (c) {
      case Column::kMlToSql:
        return "Good";
      case Column::kTfPython:
        return "Good";
      case Column::kUdf:
        return "Medium";
      default:
        return "Bad";
    }
  });
  row("Generalizability", [](Column c) {
    switch (c) {
      case Column::kMlToSql:
      case Column::kNativeModelJoin:
        return "Bad";
      default:
        return "Good";
    }
  });
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
