// Reproduces Figure 9: model-inference runtimes for LSTM networks.
//
// Paper setup (§6.1): a generated sinus time series with 3 time steps per
// forecast; a single LSTM layer of width {32,128,512} plus a one-neuron
// output layer; eight approaches. REPRO_SCALE=paper restores the paper's
// parameters.

#include <cstdio>

#include "benchlib/approaches.h"
#include "benchlib/report.h"
#include "benchlib/workloads.h"
#include "common/logging.h"
#include "sql/query_engine.h"

namespace indbml::benchlib {
namespace {

constexpr int64_t kTimesteps = 3;

int Run() {
  ScaleConfig scale = ScaleConfig::FromEnv();
  ReportTable table("fig9_lstm_runtime", {"model_width", "fact_tuples", "approach",
                                          "seconds", "wall_seconds", "rows"});

  for (int64_t width : scale.lstm_widths) {
    sql::QueryEngine engine;
    auto model_or = nn::MakeLstmBenchmarkModel(width, kTimesteps);
    INDBML_CHECK(model_or.ok()) << model_or.status().ToString();
    nn::Model model = std::move(model_or).ValueOrDie();

    for (int64_t tuples : scale.fact_sizes) {
      engine.catalog()->CreateOrReplaceTable(
          MakeSinusTable("fact", tuples, kTimesteps));
      auto context_or =
          PrepareApproachContext(&engine, &model, "bench_model", "fact",
                                 {"x0", "x1", "x2"});
      INDBML_CHECK(context_or.ok()) << context_or.status().ToString();
      ApproachContext context = std::move(context_or).ValueOrDie();

      for (Approach approach : AllApproaches()) {
        if (approach == Approach::kMlToSql && scale.mltosql_row_budget > 0 &&
            tuples * width * (kTimesteps + 1) > scale.mltosql_row_budget) {
          std::printf("[fig9] skipping ML-To-SQL for w=%lld n=%lld (row budget)\n",
                      static_cast<long long>(width), static_cast<long long>(tuples));
          continue;
        }
        auto m = RunApproach(approach, context);
        if (!m.ok()) {
          std::fprintf(stderr, "[fig9] %s failed: %s\n", ApproachName(approach),
                       m.status().ToString().c_str());
          return 1;
        }
        table.AddRow({std::to_string(width), std::to_string(tuples),
                      ApproachName(approach), FormatSeconds(m->adjusted_seconds),
                      FormatSeconds(m->wall_seconds), std::to_string(m->rows)});
        std::printf("[fig9] w=%-4lld n=%-7lld %-14s %10.4fs\n",
                    static_cast<long long>(width), static_cast<long long>(tuples),
                    ApproachName(approach), m->adjusted_seconds);
        std::fflush(stdout);
      }
    }
  }
  table.Finish();
  return 0;
}

}  // namespace
}  // namespace indbml::benchlib

int main() { return indbml::benchlib::Run(); }
